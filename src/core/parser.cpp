#include "core/parser.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/verify/diagnostics.h"
#include "data/generators.h"

namespace portal {
namespace {

// ---------------------------------------------------------------------------
// Lexer.

enum class Tok { Ident, Number, String, Punct, End };

struct Token {
  Tok kind = Tok::End;
  std::string text;
  real_t number = 0;
  int line = 0;
  int col = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& source) : src_(source) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token token = current_;
    advance();
    return token;
  }

  /// PTL-P001 = syntax (token-level), PTL-P002 = semantic (name binding,
  /// config values). The path carries the line:col context.
  [[noreturn]] void fail(const std::string& message,
                         const char* code = "PTL-P001") const {
    throw PortalDiagnosticError(Diagnostic{
        Severity::Error, code,
        "portal script:" + std::to_string(current_.line) + ":" +
            std::to_string(current_.col),
        message + (current_.kind == Tok::End
                       ? " (at end of input)"
                       : " (at '" + current_.text + "')")});
  }

 private:
  void advance() {
    // Skip whitespace and # comments.
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        col_ = 1;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++col_;
        ++pos_;
      } else if (c == '#') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
    current_ = Token{};
    current_.line = line_;
    current_.col = col_;
    if (pos_ >= src_.size()) {
      current_.kind = Tok::End;
      return;
    }

    const char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_'))
        ++pos_;
      current_.kind = Tok::Ident;
      current_.text = src_.substr(start, pos_ - start);
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && pos_ + 1 < src_.size() &&
                std::isdigit(static_cast<unsigned char>(src_[pos_ + 1])))) {
      const char* begin = src_.c_str() + pos_;
      char* end = nullptr;
      current_.number = std::strtod(begin, &end);
      current_.kind = Tok::Number;
      current_.text = std::string(begin, end - begin);
      pos_ += static_cast<std::size_t>(end - begin);
    } else if (c == '"') {
      std::size_t start = ++pos_;
      while (pos_ < src_.size() && src_[pos_] != '"') ++pos_;
      if (pos_ >= src_.size()) {
        current_.kind = Tok::End;
        fail("unterminated string literal");
      }
      current_.kind = Tok::String;
      current_.text = src_.substr(start, pos_ - start);
      ++pos_; // closing quote
    } else {
      current_.kind = Tok::Punct;
      current_.text = std::string(1, c);
      ++pos_;
    }
    col_ += static_cast<int>(current_.text.size());
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  Token current_;
};

// ---------------------------------------------------------------------------
// Parser.

class Parser {
 public:
  Parser(const std::string& source, std::string base_dir,
         const PortalConfig& base_config)
      : lexer_(source), base_dir_(std::move(base_dir)) {
    program_.config = base_config;
  }

  ParsedProgram run() {
    while (lexer_.peek().kind != Tok::End) statement();
    if (!program_.expr)
      lexer_.fail("script never declared a PortalExpr", "PTL-P002");
    return std::move(program_);
  }

 private:
  // -- token helpers ----------------------------------------------------------
  bool is_punct(const char* p) const {
    return lexer_.peek().kind == Tok::Punct && lexer_.peek().text == p;
  }
  bool is_ident(const char* name) const {
    return lexer_.peek().kind == Tok::Ident && lexer_.peek().text == name;
  }
  void expect_punct(const char* p) {
    if (!is_punct(p)) lexer_.fail(std::string("expected '") + p + "'");
    lexer_.take();
  }
  std::string expect_ident(const char* what) {
    if (lexer_.peek().kind != Tok::Ident) lexer_.fail(std::string("expected ") + what);
    return lexer_.take().text;
  }
  real_t expect_number() {
    bool negative = false;
    if (is_punct("-")) {
      lexer_.take();
      negative = true;
    }
    if (lexer_.peek().kind != Tok::Number) lexer_.fail("expected a number");
    const real_t value = lexer_.take().number;
    return negative ? -value : value;
  }

  // -- statements --------------------------------------------------------------
  void statement() {
    if (is_ident("Storage")) return storage_stmt();
    if (is_ident("Var")) return var_stmt();
    if (is_ident("Expr")) return expr_stmt();
    if (is_ident("PortalExpr")) return portalexpr_stmt();
    if (is_ident("set")) return set_stmt();
    if (lexer_.peek().kind == Tok::Ident) return method_stmt();
    lexer_.fail("expected a statement");
  }

  void storage_stmt() {
    lexer_.take(); // Storage
    const std::string name = expect_ident("a storage name");
    expect_punct("=");
    if (lexer_.peek().kind == Tok::String) {
      const Token token = lexer_.take();
      std::string full = token.text;
      if (!full.empty() && full.front() != '/') full = base_dir_ + "/" + full;
      program_.storages.emplace(name, Storage(full));
    } else if (is_ident("demo")) {
      lexer_.take();
      expect_punct("(");
      const index_t n = static_cast<index_t>(expect_number());
      index_t dim = 3;
      if (is_punct(",")) {
        lexer_.take();
        dim = static_cast<index_t>(expect_number());
      }
      expect_punct(")");
      if (n <= 0 || dim <= 0) lexer_.fail("demo(N, DIM) needs positive values", "PTL-P002");
      // Seed from the storage name: distinct names give distinct data.
      std::uint64_t seed = 0x5eedULL;
      for (char c : name) seed = seed * 131 + static_cast<unsigned char>(c);
      program_.storages.emplace(name, Storage(make_gaussian_mixture(n, dim, 5, seed)));
    } else {
      lexer_.fail("Storage needs a \"file.csv\" or demo(N[, DIM])");
    }
    expect_punct(";");
  }

  void var_stmt() {
    lexer_.take(); // Var
    const std::string name = expect_ident("a variable name");
    program_.vars.emplace(name, Var(name));
    expect_punct(";");
  }

  void expr_stmt() {
    lexer_.take(); // Expr
    const std::string name = expect_ident("an expression name");
    expect_punct("=");
    program_.exprs.emplace(name, expression());
    expect_punct(";");
  }

  void portalexpr_stmt() {
    lexer_.take(); // PortalExpr
    const std::string name = expect_ident("a PortalExpr name");
    if (program_.expr) lexer_.fail("scripts support a single PortalExpr", "PTL-P002");
    program_.expr = std::make_shared<PortalExpr>();
    expr_name_ = name;
    expect_punct(";");
  }

  void set_stmt() {
    lexer_.take(); // set
    const std::string key = expect_ident("a config key");
    expect_punct("=");
    if (key == "tau") {
      program_.config.tau = expect_number();
      program_.config.tau_explicit = true; // PTL-W106 keys on explicit tau
    } else if (key == "theta") {
      program_.config.theta = expect_number();
    } else if (key == "leaf_size") {
      program_.config.leaf_size = static_cast<index_t>(expect_number());
    } else if (key == "parallel") {
      program_.config.parallel = expect_number() != 0;
    } else if (key == "verify_ir") {
      program_.config.verify_ir = expect_number() != 0;
    } else if (key == "engine") {
      const std::string engine = expect_ident("an engine name");
      if (engine == "auto") program_.config.engine = Engine::Auto;
      else if (engine == "pattern") program_.config.engine = Engine::Pattern;
      else if (engine == "jit") program_.config.engine = Engine::JIT;
      else if (engine == "vm") program_.config.engine = Engine::VM;
      else lexer_.fail("engine must be auto | pattern | jit | vm", "PTL-P002");
    } else {
      lexer_.fail("unknown config key '" + key +
                  "' (tau, theta, leaf_size, parallel, engine, verify_ir)",
                  "PTL-P002");
    }
    expect_punct(";");
  }

  void method_stmt() {
    const std::string object = expect_ident("an object name");
    if (!program_.expr || object != expr_name_)
      lexer_.fail("unknown object '" + object + "'", "PTL-P002");
    expect_punct(".");
    const std::string method = expect_ident("a method name");
    if (method == "addLayer") {
      addlayer_call();
    } else if (method == "execute") {
      expect_punct("(");
      expect_punct(")");
      program_.expr->execute(program_.config);
      program_.executed = true;
    } else {
      lexer_.fail("unknown method '" + method + "' (addLayer, execute)", "PTL-P002");
    }
    expect_punct(";");
  }

  void addlayer_call() {
    expect_punct("(");
    const OpSpec op = op_spec();
    expect_punct(",");

    // Optional Var binding, then the Storage, then an optional kernel.
    std::string first = expect_ident("a Var or Storage name");
    std::string var_name, storage_name;
    if (program_.vars.count(first) > 0) {
      var_name = first;
      expect_punct(",");
      storage_name = expect_ident("a Storage name");
    } else {
      storage_name = first;
    }
    const auto storage_it = program_.storages.find(storage_name);
    if (storage_it == program_.storages.end())
      lexer_.fail("unknown Storage '" + storage_name + "'", "PTL-P002");

    bool have_kernel = false;
    PortalFunc func = PortalFunc::NONE;
    Expr kernel;
    if (is_punct(",")) {
      lexer_.take();
      have_kernel = true;
      if (lexer_.peek().kind == Tok::Ident && predefined_kernel(&func)) {
        // consumed by predefined_kernel
      } else {
        kernel = expression();
      }
    }
    expect_punct(")");

    if (!var_name.empty()) {
      if (have_kernel && kernel.valid()) {
        program_.expr->addLayer(op, program_.vars.at(var_name),
                                storage_it->second, kernel);
      } else if (have_kernel) {
        lexer_.fail("Var-bound layers take an expression kernel", "PTL-P002");
      } else {
        program_.expr->addLayer(op, program_.vars.at(var_name),
                                storage_it->second);
      }
    } else if (have_kernel && kernel.valid()) {
      // Inline expression without a bound Var: disallow (which vars?).
      lexer_.fail("expression kernels require Var-bound layers "
                  "(addLayer(OP, var, storage, expr))", "PTL-P002");
    } else if (have_kernel) {
      program_.expr->addLayer(op, storage_it->second, func);
    } else {
      program_.expr->addLayer(op, storage_it->second);
    }
  }

  OpSpec op_spec() {
    const std::string name = expect_ident("an operator");
    if (name == "FORALL") return {PortalOp::FORALL};
    if (name == "SUM") return {PortalOp::SUM};
    if (name == "PROD") return {PortalOp::PROD};
    if (name == "MIN") return {PortalOp::MIN};
    if (name == "MAX") return {PortalOp::MAX};
    if (name == "ARGMIN") return {PortalOp::ARGMIN};
    if (name == "ARGMAX") return {PortalOp::ARGMAX};
    if (name == "UNION") return {PortalOp::UNION};
    if (name == "UNIONARG") return {PortalOp::UNIONARG};
    PortalOp op;
    if (name == "KMIN") op = PortalOp::KMIN;
    else if (name == "KMAX") op = PortalOp::KMAX;
    else if (name == "KARGMIN") op = PortalOp::KARGMIN;
    else if (name == "KARGMAX") op = PortalOp::KARGMAX;
    else {
      lexer_.fail("unknown operator '" + name + "'", "PTL-P002");
    }
    expect_punct("(");
    const index_t k = static_cast<index_t>(expect_number());
    expect_punct(")");
    return {op, k};
  }

  /// Consumes a pre-defined kernel name if the upcoming ident is one.
  bool predefined_kernel(PortalFunc* out) {
    const std::string& name = lexer_.peek().text;
    if (name == "EUCLIDEAN") *out = PortalFunc::EUCLIDEAN;
    else if (name == "SQREUCDIST") *out = PortalFunc::SQREUCDIST;
    else if (name == "MANHATTAN") *out = PortalFunc::MANHATTAN;
    else if (name == "CHEBYSHEV") *out = PortalFunc::CHEBYSHEV;
    else if (name == "MAHALANOBIS") *out = PortalFunc::MAHALANOBIS;
    else if (name == "GAUSSIAN") {
      lexer_.take();
      expect_punct("(");
      const real_t sigma = expect_number();
      expect_punct(")");
      *out = PortalFunc::gaussian(sigma);
      return true;
    } else if (name == "INDICATOR") {
      lexer_.take();
      expect_punct("(");
      const real_t lo = expect_number();
      expect_punct(",");
      const real_t hi = expect_number();
      expect_punct(")");
      *out = PortalFunc::indicator(lo, hi);
      return true;
    } else if (name == "GRAVITY") {
      lexer_.take();
      expect_punct("(");
      const real_t g = expect_number();
      expect_punct(",");
      const real_t eps = expect_number();
      expect_punct(")");
      *out = PortalFunc::gravity(g, eps);
      return true;
    } else {
      return false;
    }
    lexer_.take();
    return true;
  }

  // -- expressions (precedence climbing) ---------------------------------------
  Expr expression() { return cmp(); }

  Expr cmp() {
    Expr left = add();
    if (is_punct("<") || is_punct(">")) {
      const bool less = lexer_.take().text == "<";
      const Expr right = add();
      return less ? (left < right) : (left > right);
    }
    return left;
  }

  Expr add() {
    Expr left = mul();
    while (is_punct("+") || is_punct("-")) {
      const bool plus = lexer_.take().text == "+";
      const Expr right = mul();
      left = plus ? left + right : left - right;
    }
    return left;
  }

  Expr mul() {
    Expr left = unary();
    while (is_punct("*") || is_punct("/")) {
      const bool times = lexer_.take().text == "*";
      const Expr right = unary();
      left = times ? left * right : left / right;
    }
    return left;
  }

  Expr unary() {
    if (is_punct("-")) {
      lexer_.take();
      return -unary();
    }
    return primary();
  }

  Expr primary() {
    if (lexer_.peek().kind == Tok::Number) return Expr(lexer_.take().number);
    if (is_punct("(")) {
      lexer_.take();
      Expr inner = expression();
      expect_punct(")");
      return inner;
    }
    if (lexer_.peek().kind != Tok::Ident) lexer_.fail("expected an expression");
    const std::string name = lexer_.take().text;

    if (is_punct("(")) { // function call
      lexer_.take();
      if (name == "pow") {
        Expr base = expression();
        expect_punct(",");
        const real_t exponent = expect_number();
        expect_punct(")");
        return pow(base, exponent);
      }
      if (name == "min" || name == "max") {
        Expr a = expression();
        expect_punct(",");
        Expr b = expression();
        expect_punct(")");
        return name == "min" ? vmin(a, b) : vmax(a, b);
      }
      if (name == "mahalanobis") {
        const std::string qn = expect_ident("a Var name");
        expect_punct(",");
        const std::string rn = expect_ident("a Var name");
        expect_punct(")");
        if (program_.vars.count(qn) == 0 || program_.vars.count(rn) == 0)
          lexer_.fail("mahalanobis() needs declared Vars", "PTL-P002");
        return mahalanobis(program_.vars.at(qn), program_.vars.at(rn));
      }
      Expr inner = expression();
      expect_punct(")");
      if (name == "sqrt") return sqrt(inner);
      if (name == "exp") return exp(inner);
      if (name == "log") return log(inner);
      if (name == "abs") return abs(inner);
      if (name == "dimsum") return dimsum(inner);
      if (name == "dimmax") return dimmax(inner);
      lexer_.fail("unknown function '" + name + "'", "PTL-P002");
    }

    // Bare identifier: a Var or a named Expr.
    if (const auto var = program_.vars.find(name); var != program_.vars.end())
      return Expr(var->second);
    if (const auto expr = program_.exprs.find(name); expr != program_.exprs.end())
      return expr->second;
    lexer_.fail("unknown identifier '" + name + "'", "PTL-P002");
  }

  Lexer lexer_;
  std::string base_dir_;
  ParsedProgram program_;
  std::string expr_name_;
};

} // namespace

ParsedProgram run_portal_script(const std::string& source,
                                const std::string& base_dir,
                                const PortalConfig& base_config) {
  Parser parser(source, base_dir, base_config);
  return parser.run();
}

ParsedProgram run_portal_script_file(const std::string& path,
                                     const PortalConfig& base_config) {
  std::ifstream in(path);
  if (!in)
    throw std::invalid_argument("portal script: cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto slash = path.find_last_of('/');
  const std::string base_dir = slash == std::string::npos ? "." : path.substr(0, slash);
  return run_portal_script(buffer.str(), base_dir, base_config);
}

} // namespace portal
