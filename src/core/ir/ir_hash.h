// Portal -- canonical structural hashing of verified IR (the plan-cache key).
//
// The serving runtime (src/serve) compiles a layer chain once through the
// full pass pipeline and then answers every structurally identical request
// from the cached artifact. "Structurally identical" is decided here: two
// programs share a fingerprint exactly when their post-pass IR -- the three
// traversal functions, the kernel expression, the envelope, and the layer
// operator sequence -- are node-for-node equal. Storage *identity* (which
// dataset object a layer binds) is deliberately excluded: the compiled
// bytecode only reads shapes the IR already bakes in (dim via flattening
// strides, layout via the injected load forms), so equal chains over
// different datasets of the same shape legitimately share one compiled plan.
//
// The hash is FNV-1a over a canonical preorder serialization. It is stable
// within a process run and across runs of the same binary; it is NOT a
// cryptographic hash -- the plan cache is keyed by (fingerprint) with the
// expectation that structurally distinct chains practically never collide
// (tests/test_serve.cpp pins this for the paper's problem families).
#pragma once

#include <cstdint>

#include "core/ir/ir.h"

namespace portal {

struct ProblemPlan; // core/plan.h (avoid the cycle: plan.h includes ir.h)

/// FNV-1a offset basis; exposed so callers can chain hashes.
inline constexpr std::uint64_t kIrHashSeed = 1469598103934665603ull;

/// Mix one 64-bit word into an FNV-1a accumulator.
std::uint64_t ir_hash_mix(std::uint64_t h, std::uint64_t word);

/// Canonical structural hash of an expression tree. Covers op codes, child
/// order, constant payloads (bit pattern), flattening strides, Mahalanobis /
/// external payloads, and labels. Null subtrees hash to a fixed sentinel.
std::uint64_t ir_expr_hash(const IrExprPtr& expr,
                           std::uint64_t seed = kIrHashSeed);

/// Canonical structural hash of a statement tree (kinds, descriptors,
/// targets, accumulation ops, embedded expressions).
std::uint64_t ir_stmt_hash(const IrStmtPtr& stmt,
                           std::uint64_t seed = kIrHashSeed);

/// Hash of the three traversal functions of an IrProgram.
std::uint64_t ir_program_hash(const IrProgram& program,
                              std::uint64_t seed = kIrHashSeed);

/// The plan-cache key: layer operator sequence (op kind, k, kernel
/// provenance -- but not storage identity or names), the normalized kernel
/// (metric, envelope shape, indicator bounds, post-pass kernel + envelope
/// IR), problem category, and the post-pass IrProgram. Computed by
/// PortalExpr::compile_if_needed() into ProblemPlan::fingerprint; the serve
/// PlanCache keys on it directly.
std::uint64_t plan_fingerprint(const ProblemPlan& plan);

} // namespace portal
