// Portal -- the compiler's intermediate representation (paper Sec. IV,
// Figs. 2-3).
//
// Kernels lower to a pure *expression* tree: per-dimension work is an
// explicit DimSum/DimMax node whose body is evaluated once per dimension
// (printed as the paper's `for d in 0 ... dim` loop). The surrounding
// BaseCase loop nest and storage injection are *statements* wrapping that
// kernel expression. Optimization passes (flattening, numerical optimization,
// strength reduction, constant folding) are expression rewrites, shared by
// every backend: the VM compiles the expression to bytecode, the JIT prints
// it as C++, and the pattern backend uses it for recognition and dumps.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/var_expr.h"
#include "util/common.h"

namespace portal {

enum class IrOp {
  // Leaves.
  Const,
  LoadQCoord, // current-dimension coordinate of the query point
  LoadRCoord, // current-dimension coordinate of the reference point
  // Metric distance atom: the normalized kernel's distance input (the
  // envelope IR is the kernel with its metric subtree replaced by Dist).
  Dist,
  Temp, // named temporary (label) -- statement-IR plumbing for dumps
  // Prune/approx atoms (node-pair scope).
  DMin,       // metric lower bound between the node boxes
  DMax,       // metric upper bound
  CenterDist, // metric distance between box centers
  RCount,     // points in the reference node
  Tau,        // user approximation threshold
  QueryBound, // per-query-node reduction bound B(Nq)
  // Arithmetic.
  Add,
  Sub,
  Mul,
  Div,
  Neg,
  Abs,
  Min,
  Max,
  Pow,         // children[0] ^ value
  Sqrt,
  FastSqrt,    // strength-reduced: 1 / fast_inv_sqrt(x)
  InvSqrt,     // 1 / sqrt(x)
  FastInvSqrt, // strength-reduced reciprocal sqrt
  Exp,
  Log,
  Less,    // indicator {0, 1}
  Greater,
  LogicalAnd,
  // Dimension reductions: children[0] is the per-dimension body.
  DimSum,
  DimMax,
  // Opaque kernels.
  MahalanobisNaive, // (q-r)^T Sigma^{-1} (q-r) via the explicit inverse
  MahalanobisChol,  // ||L^{-1}(q-r)||^2 via forward substitution (Sec. IV-D)
  ExternalCall,     // user C++ function
};

struct IrExpr;
using IrExprPtr = std::shared_ptr<const IrExpr>;

struct IrExpr {
  IrOp op = IrOp::Const;
  std::vector<IrExprPtr> children;
  real_t value = 0; // Const payload / Pow exponent

  // Flattening metadata (Sec. IV-C): set by the flattening pass on
  // LoadQCoord / LoadRCoord; before flattening the printer shows load(q, d),
  // after it shows load(q_base + d * stride).
  bool flattened = false;
  index_t stride = 1;

  // Mahalanobis / external payloads.
  std::vector<real_t> matrix; // covariance (naive) or Cholesky factor (chol)
  ExternalKernelFn external;
  std::string label;
};

IrExprPtr ir_const(real_t value);
IrExprPtr ir_leaf(IrOp op);
IrExprPtr ir_unary(IrOp op, IrExprPtr child);
IrExprPtr ir_binary(IrOp op, IrExprPtr a, IrExprPtr b);
IrExprPtr ir_pow(IrExprPtr base, real_t exponent);

/// Structural deep-copy with a child transform applied (pass helper).
using IrRewriteFn = IrExprPtr (*)(const IrExprPtr&, void*);
IrExprPtr ir_rewrite(const IrExprPtr& root,
                     const std::function<IrExprPtr(const IrExprPtr&)>& fn);

/// True if the subtree contains the given op.
bool ir_contains(const IrExprPtr& root, IrOp op);

/// Lower-case mnemonic for an op ("dim_sum", "load_q", ...) -- diagnostics
/// and IR paths.
const char* ir_op_name(IrOp op);

/// Required child count for an op. Every IrOp has a fixed arity; the
/// verifier's structural rules (PTL-E002) are driven by this table.
int ir_op_arity(IrOp op);

/// Count nodes (pass-effect reporting in the Fig. 1 pipeline bench).
index_t ir_node_count(const IrExprPtr& root);

// ---------------------------------------------------------------------------
// Statements: the lowered BaseCase / Prune / ComputeApprox skeletons.

enum class IrStmtKind {
  Block,
  Comment,
  Alloc,      // alloc <name>[<size_desc>] = <init_desc>
  Loop,       // for <var> in <lo_desc> ... <hi_desc> { body }
  AssignExpr, // <target> = <expr>
  Accum,      // <target> <accum_op>= <expr>   (SUM/PROD folding)
  ReduceCmp,  // reduction update for MIN/MAX/ARG*/K* (paper: "comparison
              // imperative code at the end of loop synthesis")
  ReturnExpr,
};

struct IrStmt;
using IrStmtPtr = std::shared_ptr<const IrStmt>;

struct IrStmt {
  IrStmtKind kind = IrStmtKind::Block;
  std::vector<IrStmtPtr> body; // Block / Loop children
  std::string text;            // Comment text, Alloc/Loop descriptors
  std::string target;          // Assign/Accum/Reduce target name
  std::string accum_op;        // "+", "*", "min", "max", "kmin", ...
  IrExprPtr expr;              // Assign/Accum/Reduce/Return payload
};

IrStmtPtr ir_block(std::vector<IrStmtPtr> body);
IrStmtPtr ir_comment(std::string text);
IrStmtPtr ir_alloc(std::string text);
IrStmtPtr ir_loop(std::string text, std::vector<IrStmtPtr> body);
IrStmtPtr ir_assign(std::string target, IrExprPtr expr);
IrStmtPtr ir_accum(std::string target, std::string op, IrExprPtr expr);
IrStmtPtr ir_reduce(std::string target, std::string op, IrExprPtr expr);
IrStmtPtr ir_return(IrExprPtr expr);

/// Rewrite every expression inside a statement tree (pass driver). `fn` is a
/// whole-expression transform -- i.e. a pass entry point, not a per-node
/// callback (contrast with ir_rewrite).
IrStmtPtr ir_stmt_rewrite(const IrStmtPtr& root,
                          const std::function<IrExprPtr(const IrExprPtr&)>& fn);

// ---------------------------------------------------------------------------
// Printing (the Fig. 2 / Fig. 3 dumps).

std::string ir_expr_to_string(const IrExprPtr& expr);
std::string ir_stmt_to_string(const IrStmtPtr& stmt, int indent = 0);

/// The three key functions of the multi-tree traversal (Algorithm 1) in IR
/// form, as Figs. 2-3 lay them out.
struct IrProgram {
  IrStmtPtr base_case;
  IrStmtPtr prune_approx;
  IrStmtPtr compute_approx;
};

std::string ir_program_to_string(const IrProgram& program);

} // namespace portal
