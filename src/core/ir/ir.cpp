#include "core/ir/ir.h"

#include <cstdio>
#include <stdexcept>

namespace portal {
namespace {

IrExprPtr make(IrExpr expr) { return std::make_shared<const IrExpr>(std::move(expr)); }

std::string fmt_value(real_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", static_cast<double>(value));
  return buf;
}

} // namespace

IrExprPtr ir_const(real_t value) {
  IrExpr e;
  e.op = IrOp::Const;
  e.value = value;
  return make(std::move(e));
}

IrExprPtr ir_leaf(IrOp op) {
  IrExpr e;
  e.op = op;
  return make(std::move(e));
}

IrExprPtr ir_unary(IrOp op, IrExprPtr child) {
  IrExpr e;
  e.op = op;
  e.children = {std::move(child)};
  return make(std::move(e));
}

IrExprPtr ir_binary(IrOp op, IrExprPtr a, IrExprPtr b) {
  IrExpr e;
  e.op = op;
  e.children = {std::move(a), std::move(b)};
  return make(std::move(e));
}

IrExprPtr ir_pow(IrExprPtr base, real_t exponent) {
  IrExpr e;
  e.op = IrOp::Pow;
  e.children = {std::move(base)};
  e.value = exponent;
  return make(std::move(e));
}

IrExprPtr ir_rewrite(const IrExprPtr& root,
                     const std::function<IrExprPtr(const IrExprPtr&)>& fn) {
  if (!root) return root;
  // Rewrite children first (bottom-up), then let fn transform the node.
  bool changed = false;
  std::vector<IrExprPtr> new_children;
  new_children.reserve(root->children.size());
  for (const IrExprPtr& child : root->children) {
    IrExprPtr rewritten = ir_rewrite(child, fn);
    changed = changed || rewritten != child;
    new_children.push_back(std::move(rewritten));
  }
  IrExprPtr node = root;
  if (changed) {
    IrExpr copy = *root;
    copy.children = std::move(new_children);
    node = make(std::move(copy));
  }
  IrExprPtr result = fn(node);
  return result ? result : node;
}

bool ir_contains(const IrExprPtr& root, IrOp op) {
  if (!root) return false;
  if (root->op == op) return true;
  for (const IrExprPtr& child : root->children)
    if (ir_contains(child, op)) return true;
  return false;
}

const char* ir_op_name(IrOp op) {
  switch (op) {
    case IrOp::Const: return "const";
    case IrOp::LoadQCoord: return "load_q";
    case IrOp::LoadRCoord: return "load_r";
    case IrOp::Dist: return "dist";
    case IrOp::Temp: return "temp";
    case IrOp::DMin: return "d_min";
    case IrOp::DMax: return "d_max";
    case IrOp::CenterDist: return "center_dist";
    case IrOp::RCount: return "r_count";
    case IrOp::Tau: return "tau";
    case IrOp::QueryBound: return "query_bound";
    case IrOp::Add: return "add";
    case IrOp::Sub: return "sub";
    case IrOp::Mul: return "mul";
    case IrOp::Div: return "div";
    case IrOp::Neg: return "neg";
    case IrOp::Abs: return "abs";
    case IrOp::Min: return "min";
    case IrOp::Max: return "max";
    case IrOp::Pow: return "pow";
    case IrOp::Sqrt: return "sqrt";
    case IrOp::FastSqrt: return "fast_sqrt";
    case IrOp::InvSqrt: return "inv_sqrt";
    case IrOp::FastInvSqrt: return "fast_inv_sqrt";
    case IrOp::Exp: return "exp";
    case IrOp::Log: return "log";
    case IrOp::Less: return "less";
    case IrOp::Greater: return "greater";
    case IrOp::LogicalAnd: return "and";
    case IrOp::DimSum: return "dim_sum";
    case IrOp::DimMax: return "dim_max";
    case IrOp::MahalanobisNaive: return "mahalanobis_naive";
    case IrOp::MahalanobisChol: return "mahalanobis_chol";
    case IrOp::ExternalCall: return "external_call";
  }
  return "?";
}

int ir_op_arity(IrOp op) {
  switch (op) {
    case IrOp::Const:
    case IrOp::LoadQCoord:
    case IrOp::LoadRCoord:
    case IrOp::Dist:
    case IrOp::Temp:
    case IrOp::DMin:
    case IrOp::DMax:
    case IrOp::CenterDist:
    case IrOp::RCount:
    case IrOp::Tau:
    case IrOp::QueryBound:
    case IrOp::MahalanobisNaive: // leaf; the matrix payload carries the data
    case IrOp::MahalanobisChol:
    case IrOp::ExternalCall:
      return 0;
    case IrOp::Neg:
    case IrOp::Abs:
    case IrOp::Pow: // exponent lives in `value`, not a child
    case IrOp::Sqrt:
    case IrOp::FastSqrt:
    case IrOp::InvSqrt:
    case IrOp::FastInvSqrt:
    case IrOp::Exp:
    case IrOp::Log:
    case IrOp::DimSum:
    case IrOp::DimMax:
      return 1;
    case IrOp::Add:
    case IrOp::Sub:
    case IrOp::Mul:
    case IrOp::Div:
    case IrOp::Min:
    case IrOp::Max:
    case IrOp::Less:
    case IrOp::Greater:
    case IrOp::LogicalAnd:
      return 2;
  }
  return 0;
}

index_t ir_node_count(const IrExprPtr& root) {
  if (!root) return 0;
  index_t count = 1;
  for (const IrExprPtr& child : root->children) count += ir_node_count(child);
  return count;
}

// ---------------------------------------------------------------------------

namespace {
IrStmtPtr make_stmt(IrStmt stmt) {
  return std::make_shared<const IrStmt>(std::move(stmt));
}
} // namespace

IrStmtPtr ir_block(std::vector<IrStmtPtr> body) {
  IrStmt s;
  s.kind = IrStmtKind::Block;
  s.body = std::move(body);
  return make_stmt(std::move(s));
}

IrStmtPtr ir_comment(std::string text) {
  IrStmt s;
  s.kind = IrStmtKind::Comment;
  s.text = std::move(text);
  return make_stmt(std::move(s));
}

IrStmtPtr ir_alloc(std::string text) {
  IrStmt s;
  s.kind = IrStmtKind::Alloc;
  s.text = std::move(text);
  return make_stmt(std::move(s));
}

IrStmtPtr ir_loop(std::string text, std::vector<IrStmtPtr> body) {
  IrStmt s;
  s.kind = IrStmtKind::Loop;
  s.text = std::move(text);
  s.body = std::move(body);
  return make_stmt(std::move(s));
}

IrStmtPtr ir_assign(std::string target, IrExprPtr expr) {
  IrStmt s;
  s.kind = IrStmtKind::AssignExpr;
  s.target = std::move(target);
  s.expr = std::move(expr);
  return make_stmt(std::move(s));
}

IrStmtPtr ir_accum(std::string target, std::string op, IrExprPtr expr) {
  IrStmt s;
  s.kind = IrStmtKind::Accum;
  s.target = std::move(target);
  s.accum_op = std::move(op);
  s.expr = std::move(expr);
  return make_stmt(std::move(s));
}

IrStmtPtr ir_reduce(std::string target, std::string op, IrExprPtr expr) {
  IrStmt s;
  s.kind = IrStmtKind::ReduceCmp;
  s.target = std::move(target);
  s.accum_op = std::move(op);
  s.expr = std::move(expr);
  return make_stmt(std::move(s));
}

IrStmtPtr ir_return(IrExprPtr expr) {
  IrStmt s;
  s.kind = IrStmtKind::ReturnExpr;
  s.expr = std::move(expr);
  return make_stmt(std::move(s));
}

IrStmtPtr ir_stmt_rewrite(const IrStmtPtr& root,
                          const std::function<IrExprPtr(const IrExprPtr&)>& fn) {
  if (!root) return root;
  IrStmt copy = *root;
  copy.body.clear();
  for (const IrStmtPtr& child : root->body)
    copy.body.push_back(ir_stmt_rewrite(child, fn));
  // fn is a whole-expression transform (a pass), applied once per statement.
  if (root->expr) copy.expr = fn(root->expr);
  return make_stmt(std::move(copy));
}

// ---------------------------------------------------------------------------
// Printing.

std::string ir_expr_to_string(const IrExprPtr& e) {
  if (!e) return "<null>";
  auto c = [&](std::size_t i) { return ir_expr_to_string(e->children[i]); };
  switch (e->op) {
    case IrOp::Const: return fmt_value(e->value);
    case IrOp::LoadQCoord:
      return e->flattened ? "load(q_base + d*" + std::to_string(e->stride) + ")"
                          : "load(q, d)";
    case IrOp::LoadRCoord:
      return e->flattened ? "load(r_base + d*" + std::to_string(e->stride) + ")"
                          : "load(r, d)";
    case IrOp::Dist: return "dist(q, r)";
    case IrOp::Temp: return e->label;
    case IrOp::DMin: return "d_min(N_q, N_r)";
    case IrOp::DMax: return "d_max(N_q, N_r)";
    case IrOp::CenterDist: return "dist(N_q.center, N_r.center)";
    case IrOp::RCount: return "N_r.count";
    case IrOp::Tau: return "tau";
    case IrOp::QueryBound: return "B(N_q)";
    case IrOp::Add: return "(" + c(0) + " + " + c(1) + ")";
    case IrOp::Sub: return "(" + c(0) + " - " + c(1) + ")";
    case IrOp::Mul: return "(" + c(0) + " * " + c(1) + ")";
    case IrOp::Div: return "(" + c(0) + " / " + c(1) + ")";
    case IrOp::Neg: return "(-" + c(0) + ")";
    case IrOp::Abs: return "abs(" + c(0) + ")";
    case IrOp::Min: return "min(" + c(0) + ", " + c(1) + ")";
    case IrOp::Max: return "max(" + c(0) + ", " + c(1) + ")";
    case IrOp::Pow: return "pow(" + c(0) + ", " + fmt_value(e->value) + ")";
    case IrOp::Sqrt: return "sqrt(" + c(0) + ")";
    case IrOp::FastSqrt: return "1/(1/fast_inverse_sqrt(" + c(0) + "))";
    case IrOp::InvSqrt: return "1/sqrt(" + c(0) + ")";
    case IrOp::FastInvSqrt: return "fast_inverse_sqrt(" + c(0) + ")";
    case IrOp::Exp: return "exp(" + c(0) + ")";
    case IrOp::Log: return "log(" + c(0) + ")";
    case IrOp::Less: return "(" + c(0) + " < " + c(1) + ")";
    case IrOp::Greater: return "(" + c(0) + " > " + c(1) + ")";
    case IrOp::LogicalAnd: return "(" + c(0) + " && " + c(1) + ")";
    case IrOp::DimSum: return "dim_sum[for d in 0 ... dim]{" + c(0) + "}";
    case IrOp::DimMax: return "dim_max[for d in 0 ... dim]{" + c(0) + "}";
    case IrOp::MahalanobisNaive: return "(q - r)^T * Sigma^-1 * (q - r)";
    case IrOp::MahalanobisChol:
      return "forward_subst(L, q - r) -> x; x^T * x";
    case IrOp::ExternalCall: return e->label + "(q, r)";
  }
  return "?";
}

std::string ir_stmt_to_string(const IrStmtPtr& s, int indent) {
  if (!s) return "";
  const std::string pad(indent * 2, ' ');
  std::string out;
  switch (s->kind) {
    case IrStmtKind::Block:
      for (const IrStmtPtr& child : s->body)
        out += ir_stmt_to_string(child, indent);
      return out;
    case IrStmtKind::Comment:
      return pad + "// " + s->text + "\n";
    case IrStmtKind::Alloc:
      return pad + "alloc " + s->text + "\n";
    case IrStmtKind::Loop:
      out = pad + "for " + s->text + "\n";
      for (const IrStmtPtr& child : s->body)
        out += ir_stmt_to_string(child, indent + 1);
      return out;
    case IrStmtKind::AssignExpr:
      return pad + s->target + " = " + ir_expr_to_string(s->expr) + "\n";
    case IrStmtKind::Accum:
      return pad + s->target + " " + s->accum_op + "= " +
             ir_expr_to_string(s->expr) + "\n";
    case IrStmtKind::ReduceCmp:
      return pad + s->target + " <- " + s->accum_op + "(" + s->target + ", " +
             ir_expr_to_string(s->expr) + ")\n";
    case IrStmtKind::ReturnExpr:
      return pad + "return " + ir_expr_to_string(s->expr) + "\n";
  }
  return out;
}

std::string ir_program_to_string(const IrProgram& program) {
  std::string out;
  out += "== BaseCase ==\n";
  out += ir_stmt_to_string(program.base_case);
  out += "== Prune/Approximate ==\n";
  out += ir_stmt_to_string(program.prune_approx);
  out += "== ComputeApprox ==\n";
  out += ir_stmt_to_string(program.compute_approx);
  return out;
}

} // namespace portal
