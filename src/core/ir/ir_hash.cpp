#include "core/ir/ir_hash.h"

#include <cstring>

#include "core/plan.h"

namespace portal {
namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ull;

// Sentinels folded into the stream so adjacent fields can never alias each
// other (e.g. an empty label followed by a child list must hash differently
// from a one-char label and an empty list).
enum : std::uint64_t {
  kTagNull = 0x9e3779b97f4a7c15ull,
  kTagExpr = 0xc2b2ae3d27d4eb4full,
  kTagStmt = 0x165667b19e3779f9ull,
  kTagString = 0x27d4eb2f165667c5ull,
  kTagEnd = 0x85ebca6b2b2ae35dull,
};

std::uint64_t mix_bytes(std::uint64_t h, const void* data, std::size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t mix_real(std::uint64_t h, real_t value) {
  // Bit pattern, not value: distinguishes -0.0 from 0.0 and keeps NaN
  // payloads stable. Canonical for the cache's purpose -- two plans whose
  // constants differ only in bit pattern evaluate differently anyway.
  std::uint64_t bits = 0;
  static_assert(sizeof(real_t) <= sizeof(bits));
  std::memcpy(&bits, &value, sizeof(real_t));
  return ir_hash_mix(h, bits);
}

std::uint64_t mix_string(std::uint64_t h, const std::string& s) {
  h = ir_hash_mix(h, kTagString);
  h = ir_hash_mix(h, s.size());
  return mix_bytes(h, s.data(), s.size());
}

// External kernels compare by code identity when possible (a plain function
// pointer wrapped in the std::function), otherwise by wrapper address --
// distinct opaque callables must never share a compiled plan, at the cost of
// copies of the same wrapper hashing apart (a cache miss, never a collision).
std::uint64_t external_identity(const ExternalKernelFn& fn) {
  if (!fn) return 0;
  using RawFn = real_t (*)(const real_t*, const real_t*, index_t);
  if (const RawFn* target = fn.target<RawFn>())
    return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(*target));
  return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(&fn));
}

} // namespace

std::uint64_t ir_hash_mix(std::uint64_t h, std::uint64_t word) {
  return mix_bytes(h, &word, sizeof(word));
}

std::uint64_t ir_expr_hash(const IrExprPtr& expr, std::uint64_t seed) {
  if (!expr) return ir_hash_mix(seed, kTagNull);
  std::uint64_t h = ir_hash_mix(seed, kTagExpr);
  h = ir_hash_mix(h, static_cast<std::uint64_t>(expr->op));
  h = mix_real(h, expr->value);
  h = ir_hash_mix(h, expr->flattened ? 1 : 0);
  h = ir_hash_mix(h, static_cast<std::uint64_t>(expr->stride));
  h = ir_hash_mix(h, expr->matrix.size());
  for (real_t m : expr->matrix) h = mix_real(h, m);
  h = ir_hash_mix(h, external_identity(expr->external));
  h = mix_string(h, expr->label);
  h = ir_hash_mix(h, expr->children.size());
  for (const IrExprPtr& child : expr->children) h = ir_expr_hash(child, h);
  return ir_hash_mix(h, kTagEnd);
}

std::uint64_t ir_stmt_hash(const IrStmtPtr& stmt, std::uint64_t seed) {
  if (!stmt) return ir_hash_mix(seed, kTagNull);
  std::uint64_t h = ir_hash_mix(seed, kTagStmt);
  h = ir_hash_mix(h, static_cast<std::uint64_t>(stmt->kind));
  h = mix_string(h, stmt->text);
  h = mix_string(h, stmt->target);
  h = mix_string(h, stmt->accum_op);
  h = ir_expr_hash(stmt->expr, h);
  h = ir_hash_mix(h, stmt->body.size());
  for (const IrStmtPtr& child : stmt->body) h = ir_stmt_hash(child, h);
  return ir_hash_mix(h, kTagEnd);
}

std::uint64_t ir_program_hash(const IrProgram& program, std::uint64_t seed) {
  std::uint64_t h = ir_stmt_hash(program.base_case, seed);
  h = ir_stmt_hash(program.prune_approx, h);
  return ir_stmt_hash(program.compute_approx, h);
}

std::uint64_t plan_fingerprint(const ProblemPlan& plan) {
  std::uint64_t h = kIrHashSeed;
  // Layer operator sequence. Storage identity and names are deliberately
  // omitted -- only shape-relevant facts, which the lowered IR also encodes
  // (dim via flattening strides, layout via the injected loads), plus the
  // operator itself and its k.
  h = ir_hash_mix(h, plan.layers.size());
  for (const LayerSpec& layer : plan.layers) {
    h = ir_hash_mix(h, static_cast<std::uint64_t>(layer.op.op));
    h = ir_hash_mix(h, static_cast<std::uint64_t>(layer.op.k));
    h = ir_hash_mix(h, static_cast<std::uint64_t>(layer.storage.dim()));
    h = ir_hash_mix(h, static_cast<std::uint64_t>(layer.storage.layout()));
    h = ir_hash_mix(h, external_identity(layer.external));
  }
  // Normalized kernel facts the backends read outside the IR.
  h = ir_hash_mix(h, plan.kernel.normalized ? 1 : 0);
  h = ir_hash_mix(h, static_cast<std::uint64_t>(plan.kernel.metric));
  h = ir_hash_mix(h, static_cast<std::uint64_t>(plan.kernel.shape));
  h = mix_real(h, plan.kernel.indicator_lo);
  h = mix_real(h, plan.kernel.indicator_hi);
  h = ir_hash_mix(h, plan.kernel.is_gravity ? 1 : 0);
  h = mix_real(h, plan.kernel.gravity_g);
  h = mix_real(h, plan.kernel.gravity_eps);
  h = ir_hash_mix(h, external_identity(plan.kernel.external));
  if (plan.kernel.maha) {
    const std::vector<real_t>& chol = plan.kernel.maha->chol();
    h = ir_hash_mix(h, chol.size());
    for (real_t v : chol) h = mix_real(h, v);
  } else {
    h = ir_hash_mix(h, kTagNull);
  }
  h = ir_expr_hash(plan.kernel.kernel_ir, h);
  h = ir_expr_hash(plan.kernel.envelope_ir, h);
  h = ir_hash_mix(h, static_cast<std::uint64_t>(plan.category));
  return ir_program_hash(plan.ir, h);
}

} // namespace portal
