// Portal -- dataflow / abstract-interpretation framework over Portal IR.
//
// One post-order sweep per expression computes a small lattice of per-node
// facts: a value interval (given the datasets' bounding boxes), a NaN
// may-flag, and monotonicity in the Dist atom. compute_kernel_facts()
// aggregates the sweep into the KernelFacts struct cached on the compiled
// plan; the lint pass (analysis/lint.h) and the engines' analysis-gated
// prune legality consume those facts. PENCIL's thesis applied to Portal: the
// IR is restricted enough that these properties are provable once,
// statically, for every backend.
#pragma once

#include <limits>
#include <string>

#include "core/analysis/facts.h"
#include "core/ir/ir.h"
#include "core/plan.h"

namespace portal {

/// Closed real interval plus a NaN may-flag -- the value lattice element.
/// `top()` is the no-information element ((-inf, inf), may be NaN).
struct ValueInterval {
  real_t lo = -std::numeric_limits<real_t>::infinity();
  real_t hi = std::numeric_limits<real_t>::infinity();
  bool may_nan = false;

  static ValueInterval top() { return {}; }
  static ValueInterval point(real_t v) { return {v, v, false}; }
  static ValueInterval of(real_t lo, real_t hi) { return {lo, hi, false}; }

  bool contains(real_t v) const { return lo <= v && v <= hi; }
  bool is_point() const { return lo == hi && !may_nan; }
};

/// Per-node analysis result of the post-order sweep.
struct ExprFacts {
  ValueInterval range;
  /// Monotonicity of this subtree's value in the Dist atom. Constant when
  /// the subtree does not reference Dist at all.
  Monotonicity mono = Monotonicity::Constant;
  bool depends_on_dist = false;
  bool depends_on_coords = false;
};

/// Context the sweep interprets the IR leaves against: the achievable
/// distance interval between the two datasets' bounding boxes (in the
/// metric's natural space), the coordinate interval, the configured tau, and
/// the dataset shape.
struct AnalysisInputs {
  real_t dist_lo = 0;
  real_t dist_hi = std::numeric_limits<real_t>::infinity();
  real_t coord_lo = -std::numeric_limits<real_t>::infinity();
  real_t coord_hi = std::numeric_limits<real_t>::infinity();
  real_t tau = 0;
  real_t rcount_max = std::numeric_limits<real_t>::infinity();
  index_t dim = 0; // 0 = unknown (DimSum range widens conservatively)
};

/// Derive AnalysisInputs from the plan's input storages: bounding boxes of
/// the query-side and reference-side datasets give the achievable distance
/// interval under the plan's metric. Plans without input datasets (or with
/// empty ones) get the conservative defaults.
AnalysisInputs make_analysis_inputs(const ProblemPlan& plan,
                                    const PortalConfig& config);

/// The post-order abstract-interpretation sweep (interval arithmetic +
/// structural monotonicity rules). Null expressions analyze to top.
ExprFacts analyze_expr(const IrExprPtr& root, const AnalysisInputs& inputs);

/// Aggregate the sweep over the plan's kernel/envelope into the KernelFacts
/// cached on the plan. The prune-legality booleans are defined to coincide
/// exactly with the legacy hard-coded rule-set conditions; the structural
/// sweep only upgrades *confidence* (Proven vs Empirical), never flips a
/// legality bit -- that is what keeps analysis-gated selection bitwise
/// identical to shape matching (ISSUE 6 acceptance).
KernelFacts compute_kernel_facts(const ProblemPlan& plan,
                                 const AnalysisInputs& inputs);

/// Human-readable per-function analysis lines appended to the verify report
/// by the PassManager analysis hook ("analysis: base_case/t range=[0,1]
/// mono=non-increasing").
std::string analyze_program_summary(const IrProgram& program,
                                    const AnalysisInputs& inputs);

/// Structural equality of two expression trees (op, children, payloads).
bool ir_structurally_equal(const IrExprPtr& a, const IrExprPtr& b);

/// True when swapping LoadQCoord <-> LoadRCoord leaves the kernel
/// structurally unchanged (symmetric kernels; Dist-only kernels trivially
/// qualify). External kernels are never provably symmetric.
bool ir_kernel_symmetric(const IrExprPtr& kernel_ir);

inline const char* monotonicity_name(Monotonicity m) {
  switch (m) {
    case Monotonicity::Constant: return "constant";
    case Monotonicity::NonIncreasing: return "non-increasing";
    case Monotonicity::NonDecreasing: return "non-decreasing";
    case Monotonicity::Unknown: return "unknown";
  }
  return "?";
}

inline const char* fact_confidence_name(FactConfidence c) {
  switch (c) {
    case FactConfidence::Proven: return "proven";
    case FactConfidence::Empirical: return "empirical";
    case FactConfidence::Unknown: return "unknown";
  }
  return "?";
}

} // namespace portal
