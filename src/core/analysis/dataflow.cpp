// Portal -- implementation of the IR dataflow analysis (analysis/dataflow.h).
//
// The sweep is a single post-order walk per expression. Interval arithmetic
// follows the usual conventions (endpoint products with 0 * inf treated as
// 0, which is sound for bounds of finite inputs); the `may_nan` flag is a
// may-analysis, so it only ever over-approximates. Monotonicity is tracked
// *in the Dist atom*: `Constant` means the subtree's value is fixed for the
// whole run (constants, tau), while anything that varies per point pair
// other than through Dist (coordinate loads, per-node atoms, external calls)
// is `Unknown` -- which is exactly what makes the kernel-level claim sound:
// a kernel is only monotone-in-distance if every pair dependence flows
// through Dist.
#include "core/analysis/dataflow.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "tree/bbox.h"

namespace portal {

namespace {

constexpr real_t kInf = std::numeric_limits<real_t>::infinity();

Monotonicity mono_flip(Monotonicity m) {
  switch (m) {
    case Monotonicity::NonIncreasing: return Monotonicity::NonDecreasing;
    case Monotonicity::NonDecreasing: return Monotonicity::NonIncreasing;
    default: return m;
  }
}

/// Direction-preserving combine (Add, Min, Max, LogicalAnd, DimSum, ...):
/// Constant is neutral, agreeing directions survive, disagreement or any
/// Unknown operand loses the fact.
Monotonicity mono_combine(Monotonicity a, Monotonicity b) {
  if (a == Monotonicity::Constant) return b;
  if (b == Monotonicity::Constant) return a;
  if (a == b && a != Monotonicity::Unknown) return a;
  return Monotonicity::Unknown;
}

bool nonneg(const ValueInterval& v) { return v.lo >= 0; }
bool nonpos(const ValueInterval& v) { return v.hi <= 0; }

/// Sign-aware monotonicity of a product.
Monotonicity mono_mul(const ExprFacts& a, const ExprFacts& b) {
  if (a.mono == Monotonicity::Constant) {
    if (nonneg(a.range)) return b.mono;
    if (nonpos(a.range)) return mono_flip(b.mono);
    return b.mono == Monotonicity::Constant ? Monotonicity::Constant
                                            : Monotonicity::Unknown;
  }
  if (b.mono == Monotonicity::Constant) {
    if (nonneg(b.range)) return a.mono;
    if (nonpos(b.range)) return mono_flip(a.mono);
    return Monotonicity::Unknown;
  }
  // Both vary: a shared direction survives only when both factors are
  // non-negative (e.g. the product of two non-increasing densities).
  if (a.mono == b.mono && a.mono != Monotonicity::Unknown && nonneg(a.range) &&
      nonneg(b.range)) {
    return a.mono;
  }
  return Monotonicity::Unknown;
}

real_t add_lo(real_t a, real_t b) {
  if (a == -kInf || b == -kInf) return -kInf;
  return a + b;
}
real_t add_hi(real_t a, real_t b) {
  if (a == kInf || b == kInf) return kInf;
  return a + b;
}

/// Endpoint product with the interval-arithmetic 0 * inf = 0 convention.
real_t mul_ep(real_t a, real_t b) {
  if (a == 0 || b == 0) return 0;
  return a * b;
}

ValueInterval interval_add(ValueInterval a, ValueInterval b) {
  return {add_lo(a.lo, b.lo), add_hi(a.hi, b.hi), a.may_nan || b.may_nan};
}

ValueInterval interval_neg(ValueInterval a) { return {-a.hi, -a.lo, a.may_nan}; }

ValueInterval interval_mul(ValueInterval a, ValueInterval b) {
  const real_t p1 = mul_ep(a.lo, b.lo);
  const real_t p2 = mul_ep(a.lo, b.hi);
  const real_t p3 = mul_ep(a.hi, b.lo);
  const real_t p4 = mul_ep(a.hi, b.hi);
  return {std::min(std::min(p1, p2), std::min(p3, p4)),
          std::max(std::max(p1, p2), std::max(p3, p4)),
          a.may_nan || b.may_nan};
}

ValueInterval interval_recip(ValueInterval b, bool* divides_zero) {
  *divides_zero = b.lo <= 0 && b.hi >= 0;
  if (*divides_zero) return ValueInterval::top();
  // Same-sign interval: 1/x is monotone decreasing, endpoints swap.
  const real_t lo = b.hi == kInf || b.hi == -kInf ? 0 : 1 / b.hi;
  const real_t hi = b.lo == kInf || b.lo == -kInf ? 0 : 1 / b.lo;
  return {std::min(lo, hi), std::max(lo, hi), b.may_nan};
}

bool is_integer(real_t v) { return std::isfinite(v) && std::floor(v) == v; }

ExprFacts analyze_node(const IrExprPtr& node, const AnalysisInputs& in);

ExprFacts analyze_pow(const ExprFacts& base, real_t e) {
  ExprFacts f;
  f.depends_on_dist = base.depends_on_dist;
  f.depends_on_coords = base.depends_on_coords;
  f.range = ValueInterval::top();
  f.range.may_nan = base.range.may_nan;
  f.mono = Monotonicity::Unknown;
  if (e == 0) {
    f.range = ValueInterval::point(1);
    f.mono = Monotonicity::Constant;
    return f;
  }
  const ValueInterval& b = base.range;
  if (b.lo >= 0) {
    // pow is monotone on [0, inf): increasing for e > 0, decreasing for
    // e < 0 (with pow(0, e<0) = inf).
    const real_t plo = std::pow(b.lo, e);
    const real_t phi = std::pow(b.hi, e);
    f.range = {std::min(plo, phi), std::max(plo, phi), b.may_nan};
    f.mono = e > 0 ? base.mono : mono_flip(base.mono);
    return f;
  }
  if (is_integer(e) && e > 0) {
    const real_t plo = std::pow(b.lo, e);
    const real_t phi = std::pow(b.hi, e);
    if (std::fmod(e, 2) == 0) {
      const real_t lo = b.contains(0) ? 0 : std::min(plo, phi);
      f.range = {lo, std::max(plo, phi), b.may_nan};
    } else {
      f.range = {plo, phi, b.may_nan}; // odd power is monotone everywhere
      f.mono = base.mono;
    }
    return f;
  }
  // Negative base with a non-integer (or negative) exponent: NaN territory.
  f.range.may_nan = true;
  return f;
}

ExprFacts analyze_node(const IrExprPtr& node, const AnalysisInputs& in) {
  ExprFacts f;
  if (node == nullptr) {
    f.range = ValueInterval::top();
    f.mono = Monotonicity::Unknown;
    return f;
  }
  auto child = [&](std::size_t i) -> ExprFacts {
    return i < node->children.size() ? analyze_node(node->children[i], in)
                                     : ExprFacts{ValueInterval::top(),
                                                 Monotonicity::Unknown, false,
                                                 false};
  };
  switch (node->op) {
    case IrOp::Const:
      f.range = ValueInterval::point(node->value);
      f.mono = Monotonicity::Constant;
      return f;
    case IrOp::LoadQCoord:
    case IrOp::LoadRCoord:
      f.range = ValueInterval::of(in.coord_lo, in.coord_hi);
      f.mono = Monotonicity::Unknown; // varies per pair, not through Dist
      f.depends_on_coords = true;
      return f;
    case IrOp::Dist:
      f.range = ValueInterval::of(in.dist_lo, in.dist_hi);
      f.mono = Monotonicity::NonDecreasing; // the identity in itself
      f.depends_on_dist = true;
      return f;
    case IrOp::Temp:
    case IrOp::QueryBound:
      f.range = ValueInterval::top();
      f.mono = Monotonicity::Unknown;
      return f;
    case IrOp::DMin:
    case IrOp::DMax:
    case IrOp::CenterDist:
      f.range = ValueInterval::of(in.dist_lo, in.dist_hi);
      f.mono = Monotonicity::Unknown; // varies per node pair
      return f;
    case IrOp::RCount:
      f.range = ValueInterval::of(0, in.rcount_max);
      f.mono = Monotonicity::Unknown;
      return f;
    case IrOp::Tau:
      f.range = ValueInterval::point(in.tau);
      f.mono = Monotonicity::Constant;
      return f;
    case IrOp::Add: {
      const ExprFacts a = child(0), b = child(1);
      f.range = interval_add(a.range, b.range);
      f.mono = mono_combine(a.mono, b.mono);
      f.depends_on_dist = a.depends_on_dist || b.depends_on_dist;
      f.depends_on_coords = a.depends_on_coords || b.depends_on_coords;
      return f;
    }
    case IrOp::Sub: {
      const ExprFacts a = child(0), b = child(1);
      f.range = interval_add(a.range, interval_neg(b.range));
      f.mono = mono_combine(a.mono, mono_flip(b.mono));
      f.depends_on_dist = a.depends_on_dist || b.depends_on_dist;
      f.depends_on_coords = a.depends_on_coords || b.depends_on_coords;
      return f;
    }
    case IrOp::Mul: {
      const ExprFacts a = child(0), b = child(1);
      f.range = interval_mul(a.range, b.range);
      f.mono = mono_mul(a, b);
      f.depends_on_dist = a.depends_on_dist || b.depends_on_dist;
      f.depends_on_coords = a.depends_on_coords || b.depends_on_coords;
      return f;
    }
    case IrOp::Div: {
      const ExprFacts a = child(0), b = child(1);
      bool divides_zero = false;
      const ValueInterval recip = interval_recip(b.range, &divides_zero);
      if (divides_zero) {
        f.range = ValueInterval::top();
        // 0/0 is the NaN case; x/0 for x != 0 is +-inf (covered by top).
        f.range.may_nan =
            a.range.may_nan || b.range.may_nan || a.range.contains(0);
        f.mono = Monotonicity::Unknown;
      } else {
        f.range = interval_mul(a.range, recip);
        ExprFacts rb = b;
        rb.range = recip;
        rb.mono = mono_flip(b.mono);
        f.mono = mono_mul(a, rb);
      }
      f.depends_on_dist = a.depends_on_dist || b.depends_on_dist;
      f.depends_on_coords = a.depends_on_coords || b.depends_on_coords;
      return f;
    }
    case IrOp::Neg: {
      const ExprFacts a = child(0);
      f = a;
      f.range = interval_neg(a.range);
      f.mono = mono_flip(a.mono);
      return f;
    }
    case IrOp::Abs: {
      const ExprFacts a = child(0);
      f = a;
      if (a.range.lo >= 0) {
        // already non-negative: identity
      } else if (a.range.hi <= 0) {
        f.range = interval_neg(a.range);
        f.mono = mono_flip(a.mono);
      } else {
        f.range = {0, std::max(-a.range.lo, a.range.hi), a.range.may_nan};
        f.mono = a.mono == Monotonicity::Constant ? Monotonicity::Constant
                                                  : Monotonicity::Unknown;
      }
      return f;
    }
    case IrOp::Min:
    case IrOp::Max: {
      const ExprFacts a = child(0), b = child(1);
      if (node->op == IrOp::Min) {
        f.range = {std::min(a.range.lo, b.range.lo),
                   std::min(a.range.hi, b.range.hi),
                   a.range.may_nan || b.range.may_nan};
      } else {
        f.range = {std::max(a.range.lo, b.range.lo),
                   std::max(a.range.hi, b.range.hi),
                   a.range.may_nan || b.range.may_nan};
      }
      f.mono = mono_combine(a.mono, b.mono);
      f.depends_on_dist = a.depends_on_dist || b.depends_on_dist;
      f.depends_on_coords = a.depends_on_coords || b.depends_on_coords;
      return f;
    }
    case IrOp::Pow: {
      const ExprFacts a = child(0);
      return analyze_pow(a, node->value);
    }
    case IrOp::Sqrt:
    case IrOp::FastSqrt: {
      const ExprFacts a = child(0);
      f = a;
      const real_t lo = std::max<real_t>(a.range.lo, 0);
      const real_t hi = std::max<real_t>(a.range.hi, 0);
      f.range = {std::sqrt(lo), std::sqrt(hi),
                 a.range.may_nan || a.range.lo < 0};
      return f; // increasing: monotonicity preserved
    }
    case IrOp::InvSqrt:
    case IrOp::FastInvSqrt: {
      const ExprFacts a = child(0);
      f = a;
      const real_t lo = std::max<real_t>(a.range.lo, 0);
      const real_t hi = std::max<real_t>(a.range.hi, 0);
      const real_t rhi = lo == 0 ? kInf : 1 / std::sqrt(lo);
      const real_t rlo = hi == kInf ? 0 : (hi == 0 ? kInf : 1 / std::sqrt(hi));
      f.range = {rlo, rhi, a.range.may_nan || a.range.lo < 0};
      f.mono = mono_flip(a.mono); // decreasing on the domain
      return f;
    }
    case IrOp::Exp: {
      const ExprFacts a = child(0);
      f = a;
      f.range = {std::exp(a.range.lo), std::exp(a.range.hi), a.range.may_nan};
      return f; // increasing
    }
    case IrOp::Log: {
      const ExprFacts a = child(0);
      f = a;
      f.range = {a.range.lo <= 0 ? -kInf : std::log(a.range.lo),
                 a.range.hi <= 0 ? -kInf : std::log(a.range.hi),
                 a.range.may_nan || a.range.lo < 0};
      return f; // increasing on the domain
    }
    case IrOp::Less:
    case IrOp::Greater: {
      ExprFacts a = child(0), b = child(1);
      if (node->op == IrOp::Greater) std::swap(a, b); // a < b normal form
      if (a.range.hi < b.range.lo) {
        f.range = ValueInterval::point(1);
      } else if (a.range.lo >= b.range.hi) {
        f.range = ValueInterval::point(0);
      } else {
        f.range = ValueInterval::of(0, 1);
      }
      f.range.may_nan = a.range.may_nan || b.range.may_nan;
      // I(a < b) steps down where a crosses b: decreasing in a, increasing
      // in b.
      f.mono = mono_combine(mono_flip(a.mono), b.mono);
      f.depends_on_dist = a.depends_on_dist || b.depends_on_dist;
      f.depends_on_coords = a.depends_on_coords || b.depends_on_coords;
      return f;
    }
    case IrOp::LogicalAnd: {
      const ExprFacts a = child(0), b = child(1);
      if (a.range.is_point() && a.range.lo == 0) {
        f.range = ValueInterval::point(0);
      } else if (b.range.is_point() && b.range.lo == 0) {
        f.range = ValueInterval::point(0);
      } else if (a.range.is_point() && a.range.lo == 1 && b.range.is_point() &&
                 b.range.lo == 1) {
        f.range = ValueInterval::point(1);
      } else {
        f.range = ValueInterval::of(0, 1);
      }
      f.range.may_nan = a.range.may_nan || b.range.may_nan;
      f.mono = mono_combine(a.mono, b.mono); // product of 0/1 indicators
      f.depends_on_dist = a.depends_on_dist || b.depends_on_dist;
      f.depends_on_coords = a.depends_on_coords || b.depends_on_coords;
      return f;
    }
    case IrOp::DimSum: {
      const ExprFacts a = child(0);
      f = a;
      if (in.dim > 0) {
        const real_t n = static_cast<real_t>(in.dim);
        f.range = {mul_ep(a.range.lo, n), mul_ep(a.range.hi, n),
                   a.range.may_nan};
      } else {
        // Unknown dimensionality: the sum of >= 1 body copies keeps only
        // one-sided bounds.
        f.range = {a.range.lo >= 0 ? a.range.lo : -kInf,
                   a.range.hi <= 0 ? a.range.hi : kInf, a.range.may_nan};
      }
      return f; // sum preserves a shared direction
    }
    case IrOp::DimMax: {
      f = child(0);
      return f; // max over body copies stays inside the body's range
    }
    case IrOp::MahalanobisNaive:
    case IrOp::MahalanobisChol:
      f.range = ValueInterval::of(0, kInf);
      f.mono = Monotonicity::Unknown;
      f.depends_on_coords = true;
      return f;
    case IrOp::ExternalCall:
      f.range = ValueInterval::top();
      f.range.may_nan = true;
      f.mono = Monotonicity::Unknown;
      f.depends_on_coords = true;
      return f;
  }
  f.range = ValueInterval::top();
  f.mono = Monotonicity::Unknown;
  return f;
}

std::string format_real(real_t v) {
  if (v == kInf) return "inf";
  if (v == -kInf) return "-inf";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", static_cast<double>(v));
  return buf;
}

void summarize_stmt(const IrStmtPtr& stmt, const char* fn,
                    const AnalysisInputs& in, std::ostringstream* out) {
  if (stmt == nullptr) return;
  switch (stmt->kind) {
    case IrStmtKind::Block:
    case IrStmtKind::Loop:
      for (const IrStmtPtr& s : stmt->body) summarize_stmt(s, fn, in, out);
      return;
    case IrStmtKind::AssignExpr:
    case IrStmtKind::Accum:
    case IrStmtKind::ReduceCmp:
    case IrStmtKind::ReturnExpr: {
      if (stmt->expr == nullptr) return;
      const ExprFacts f = analyze_expr(stmt->expr, in);
      const char* target =
          stmt->kind == IrStmtKind::ReturnExpr ? "return" : stmt->target.c_str();
      *out << "analysis: " << fn << '/' << target << " range=["
           << format_real(f.range.lo) << ", " << format_real(f.range.hi)
           << "] mono=" << monotonicity_name(f.mono)
           << (f.range.may_nan ? " may-nan" : "") << '\n';
      return;
    }
    default:
      return;
  }
}

/// Union bounding box of one dataset.
bool include_storage(const Storage& storage, BBox* box) {
  if (!storage.is_input() || storage.size() == 0) return false;
  const Dataset& data = storage.dataset();
  if (box->dim() == 0) *box = BBox(data.dim());
  if (box->dim() != data.dim()) return false;
  std::vector<real_t> point(data.dim());
  for (index_t i = 0; i < data.size(); ++i) {
    data.copy_point(i, point.data());
    box->include_point(point.data());
  }
  return true;
}

} // namespace

ExprFacts analyze_expr(const IrExprPtr& root, const AnalysisInputs& inputs) {
  return analyze_node(root, inputs);
}

AnalysisInputs make_analysis_inputs(const ProblemPlan& plan,
                                    const PortalConfig& config) {
  AnalysisInputs in;
  in.tau = config.tau;
  if (plan.layers.empty()) return in;

  BBox query_box, ref_box;
  const bool have_q = include_storage(plan.layers.front().storage, &query_box);
  bool have_r = false;
  real_t ref_points = 0;
  for (std::size_t i = 1; i < plan.layers.size(); ++i) {
    if (include_storage(plan.layers[i].storage, &ref_box)) {
      have_r = true;
      ref_points += static_cast<real_t>(plan.layers[i].storage.size());
    }
  }
  if (have_q && !have_r) { // single-dataset chain: pairs within one set
    ref_box = query_box;
    have_r = true;
    ref_points = static_cast<real_t>(plan.layers.front().storage.size());
  }
  if (!have_q || !have_r || query_box.dim() != ref_box.dim()) return in;

  in.dim = query_box.dim();
  in.rcount_max = ref_points;
  in.coord_lo = kInf;
  in.coord_hi = -kInf;
  for (index_t d = 0; d < query_box.dim(); ++d) {
    in.coord_lo = std::min({in.coord_lo, query_box.lo(d), ref_box.lo(d)});
    in.coord_hi = std::max({in.coord_hi, query_box.hi(d), ref_box.hi(d)});
  }
  const MahalanobisContext* maha = plan.kernel.maha.get();
  in.dist_lo = query_box.min_dist(plan.kernel.metric, ref_box, maha);
  in.dist_hi = query_box.max_dist(plan.kernel.metric, ref_box, maha);
  return in;
}

KernelFacts compute_kernel_facts(const ProblemPlan& plan,
                                 const AnalysisInputs& inputs) {
  KernelFacts f;
  f.computed = true;
  f.dist_lo = inputs.dist_lo;
  f.dist_hi = inputs.dist_hi;

  const KernelInfo& kernel = plan.kernel;
  f.envelope_identity =
      kernel.normalized && kernel.shape == EnvelopeShape::Identity;
  f.envelope_indicator =
      kernel.normalized && kernel.shape == EnvelopeShape::Indicator;

  if (!plan.layers.empty()) {
    const PortalOp op = plan.layers.back().op.op;
    // SUM/PROD/MIN/MAX/UNION-family reductions commute and associate; the
    // ARG* reductions break both at exact kernel-value ties (the surviving
    // index depends on visit order).
    f.accum_commutative = !op_is_arg(op);
    f.accum_associative = !op_is_arg(op);
  }

  const IrExprPtr& analyzed =
      kernel.normalized && kernel.envelope_ir ? kernel.envelope_ir
                                              : kernel.kernel_ir;
  if (analyzed != nullptr) {
    const ExprFacts ef = analyze_expr(analyzed, inputs);
    f.value_lo = ef.range.lo;
    f.value_hi = ef.range.hi;
    f.may_nan = ef.range.may_nan;
    if (kernel.normalized && kernel.envelope_ir &&
        ef.mono != Monotonicity::Unknown) {
      f.mono = ef.mono;
      f.mono_confidence = FactConfidence::Proven;
    }
  }
  if (f.mono_confidence != FactConfidence::Proven && kernel.normalized) {
    // Fall back to the sampling classifier's shape (the empirical tier).
    switch (kernel.shape) {
      case EnvelopeShape::Identity:
      case EnvelopeShape::Increasing:
        f.mono = Monotonicity::NonDecreasing;
        f.mono_confidence = FactConfidence::Empirical;
        break;
      case EnvelopeShape::Decreasing:
        f.mono = Monotonicity::NonIncreasing;
        f.mono_confidence = FactConfidence::Empirical;
        break;
      default:
        break; // Indicator / Opaque: not monotone / not established
    }
  }

  // A normalized kernel reaches the pair only through the (symmetric)
  // distance, so k(q, r) = k(r, q) holds by construction; otherwise fall
  // back to the structural q<->r swap check.
  f.symmetric = kernel.external == nullptr && !kernel.is_gravity &&
                (kernel.normalized || ir_kernel_symmetric(kernel.kernel_ir));

  // Prune/approximation legality: defined to coincide bit-for-bit with the
  // legacy rule-set conditions (see serve/engine.cpp and executor.cpp).
  // The structural sweep above refines confidence, never these booleans.
  f.reduction_prune_legal = plan.category == ProblemCategory::Pruning &&
                            kernel.normalized &&
                            kernel.shape != EnvelopeShape::Indicator &&
                            kernel.shape != EnvelopeShape::Opaque;
  f.indicator_prune_legal =
      kernel.normalized && kernel.shape == EnvelopeShape::Indicator;
  f.approx_legal =
      plan.category == ProblemCategory::Approximation && kernel.normalized;
  return f;
}

std::string analyze_program_summary(const IrProgram& program,
                                    const AnalysisInputs& inputs) {
  std::ostringstream out;
  summarize_stmt(program.base_case, "base_case", inputs, &out);
  summarize_stmt(program.prune_approx, "prune_approx", inputs, &out);
  summarize_stmt(program.compute_approx, "compute_approx", inputs, &out);
  return out.str();
}

bool ir_structurally_equal(const IrExprPtr& a, const IrExprPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->op != b->op || a->value != b->value || a->label != b->label ||
      a->flattened != b->flattened || a->stride != b->stride ||
      a->matrix != b->matrix || a->children.size() != b->children.size()) {
    return false;
  }
  // std::function has no equality; distinct ExternalCall nodes are never
  // structurally equal (the same-pointer case already returned true above).
  if (a->external || b->external) return false;
  for (std::size_t i = 0; i < a->children.size(); ++i) {
    if (!ir_structurally_equal(a->children[i], b->children[i])) return false;
  }
  return true;
}

namespace {

IrExprPtr swap_qr(const IrExprPtr& node) {
  return ir_rewrite(node, [](const IrExprPtr& e) -> IrExprPtr {
    if (e->op != IrOp::LoadQCoord && e->op != IrOp::LoadRCoord) return e;
    auto copy = std::make_shared<IrExpr>(*e);
    copy->op = e->op == IrOp::LoadQCoord ? IrOp::LoadRCoord : IrOp::LoadQCoord;
    return copy;
  });
}

} // namespace

bool ir_kernel_symmetric(const IrExprPtr& kernel_ir) {
  if (kernel_ir == nullptr) return false;
  if (ir_contains(kernel_ir, IrOp::ExternalCall)) return false;
  return ir_structurally_equal(kernel_ir, swap_qr(kernel_ir));
}

} // namespace portal
