// Portal -- the lint pass: semantic warnings (PTL-Wxxx) derived from the
// dataflow analysis (analysis/dataflow.h).
//
// Codes are stable and append-only (docs/DIAGNOSTICS.md policy, same as the
// verifier's PTL-E range). Lint never changes compilation results: warnings
// ride on CompileArtifacts and surface through `portal_cli lint` (human or
// JSON, optionally warnings-as-errors).
//
//   PTL-W101  constant kernel: result does not depend on the point pair
//   PTL-W102  unsatisfiable prune condition: indicator is identically zero
//   PTL-W103  always-true prune condition: indicator passes every pair
//   PTL-W104  guaranteed non-finite kernel (NaN / overflow on every pair)
//   PTL-W105  comparative reduction without a provable envelope: pruning
//             silently disabled, traversal runs exhaustively
//   PTL-W106  tau supplied to a problem family that ignores it
#pragma once

#include "core/analysis/dataflow.h"
#include "core/plan.h"
#include "core/verify/diagnostics.h"

namespace portal {

/// Run every lint rule over the compiled plan, emitting PTL-Wxxx warnings
/// into `diags`. `facts`/`inputs` come from the same compile's analysis
/// sweep (compute_kernel_facts / make_analysis_inputs).
void lint_plan(const ProblemPlan& plan, const PortalConfig& config,
               const KernelFacts& facts, const AnalysisInputs& inputs,
               DiagnosticEngine* diags);

} // namespace portal
