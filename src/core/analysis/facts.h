// Portal -- kernel property facts produced by the IR dataflow analysis.
//
// One small, plain struct that rides on the compiled ProblemPlan (next to
// the PR-5 IR fingerprint) so every consumer -- the pattern engine, the
// generic executor, the serve rule sets, the lint pass, portal_cli -- reads
// the same proven facts instead of re-deriving legality from syntax. The
// struct deliberately depends only on util/common.h: plan.h includes it, so
// it must not pull core headers back in.
#pragma once

#include <limits>

#include "util/common.h"

namespace portal {

/// Monotonicity of the scalar kernel value in the underlying point distance.
/// Proven structurally on the post-pass IR (see dataflow.cpp); distinct from
/// the sampling-based EnvelopeShape classification, which stays the
/// empirical fallback.
enum class Monotonicity {
  Constant,      // no dependence on the distance at all
  NonIncreasing, // d1 <= d2  =>  k(d1) >= k(d2)
  NonDecreasing, // d1 <= d2  =>  k(d1) <= k(d2)
  Unknown,       // not monotone, or not provable structurally
};

/// How a fact was established. Proven = structural abstract interpretation
/// of the IR; Empirical = the pre-existing sampling classifier
/// (classify_envelope); Unknown = neither tier could establish it.
enum class FactConfidence {
  Proven,
  Empirical,
  Unknown,
};

/// Per-plan analysis results. `computed` is false on plans that never went
/// through the analysis sweep (e.g. deserialized or hand-built plans); all
/// consumers fall back to the legacy shape-matching rules in that case, so
/// a facts-free plan behaves exactly as before this framework existed.
struct KernelFacts {
  bool computed = false;

  // Envelope classification mirrored as booleans so engines stop comparing
  // EnvelopeShape enumerators directly.
  bool envelope_identity = false;
  bool envelope_indicator = false;

  // Monotonicity of the kernel in the distance plus the tier that proved it.
  Monotonicity mono = Monotonicity::Unknown;
  FactConfidence mono_confidence = FactConfidence::Unknown;

  // Interval of kernel values achievable over the datasets' bounding boxes
  // (the post-order interval sweep's root range). Infinite bounds mean
  // "unbounded / not computed".
  real_t value_lo = -std::numeric_limits<real_t>::infinity();
  real_t value_hi = std::numeric_limits<real_t>::infinity();
  /// May-analysis: true when some input in the achievable range can produce
  /// a NaN (0/0, sqrt of a negative, log of a non-positive, ...).
  bool may_nan = false;

  // Achievable distance interval between the two datasets' bounding boxes,
  // in the metric's natural space (squared for SqEuclidean/Mahalanobis).
  real_t dist_lo = 0;
  real_t dist_hi = std::numeric_limits<real_t>::infinity();

  /// Kernel is symmetric under swapping the query and reference points
  /// (structural check: swapping LoadQCoord/LoadRCoord yields an identical
  /// expression). Distance-only kernels are trivially symmetric.
  bool symmetric = false;

  // Accumulation algebra (determinism relevance): SUM/MIN/MAX-family ops
  // commute and associate; ARG*-family results depend on visit order at
  // exact ties.
  bool accum_commutative = false;
  bool accum_associative = false;

  // Prune/approximation legality consumed by the engines when
  // ProblemPlan::analysis_gated is set. Defined to coincide exactly with
  // the legacy hard-coded rule-set conditions (the differential fuzz wall
  // proves gated selection is bitwise identical to shape matching).
  bool reduction_prune_legal = false; // comparative op + usable envelope
  bool indicator_prune_legal = false; // normalized indicator interval
  bool approx_legal = false;          // tau-approximation may fire
};

} // namespace portal
