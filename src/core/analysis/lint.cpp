// Portal -- lint rule implementations (analysis/lint.h).
#include "core/analysis/lint.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "core/ops.h"

namespace portal {

namespace {

constexpr real_t kInf = std::numeric_limits<real_t>::infinity();

/// Largest x with exp(x) finite in double precision (~709.78); above it the
/// kernel overflows to +inf on every pair.
constexpr real_t kExpOverflow = 709.0;

std::string format_real(real_t v) {
  if (v == kInf) return "inf";
  if (v == -kInf) return "-inf";
  std::ostringstream out;
  out << v;
  return out.str();
}

/// Must-analysis: find a node whose result is non-finite for *every* input
/// in the achievable ranges (0/0 or sqrt/log of a certainly-negative value,
/// exp certain to overflow). Returns true and fills path/why on the first
/// hit; the may_nan interval flag is deliberately not enough to fire.
bool find_guaranteed_nonfinite(const IrExprPtr& node, const AnalysisInputs& in,
                               const std::string& path, std::string* where,
                               std::string* why) {
  if (node == nullptr) return false;
  const std::string here =
      path.empty() ? ir_op_name(node->op) : path + "/" + ir_op_name(node->op);
  for (const IrExprPtr& child : node->children) {
    if (find_guaranteed_nonfinite(child, in, here, where, why)) return true;
  }
  auto child_range = [&](std::size_t i) -> ValueInterval {
    return i < node->children.size()
               ? analyze_expr(node->children[i], in).range
               : ValueInterval::top();
  };
  switch (node->op) {
    case IrOp::Log: {
      const ValueInterval c = child_range(0);
      if (c.hi < 0) {
        *where = here;
        *why = "log of a value that is always negative (NaN on every pair)";
        return true;
      }
      if (c.is_point() && c.lo == 0) {
        *where = here;
        *why = "log(0): the argument is identically zero (-inf on every pair)";
        return true;
      }
      return false;
    }
    case IrOp::Sqrt:
    case IrOp::FastSqrt:
    case IrOp::InvSqrt:
    case IrOp::FastInvSqrt: {
      const ValueInterval c = child_range(0);
      if (c.hi < 0) {
        *where = here;
        *why = "square root of a value that is always negative (NaN on every "
               "pair)";
        return true;
      }
      return false;
    }
    case IrOp::Div: {
      const ValueInterval d = child_range(1);
      if (d.is_point() && d.lo == 0) {
        *where = here;
        *why = "division by a value that is identically zero";
        return true;
      }
      return false;
    }
    case IrOp::Pow: {
      const ValueInterval c = child_range(0);
      if (node->value < 0 && c.is_point() && c.lo == 0) {
        *where = here;
        *why = "negative power of a value that is identically zero";
        return true;
      }
      return false;
    }
    case IrOp::Exp: {
      const ValueInterval c = child_range(0);
      if (c.lo > kExpOverflow) {
        *where = here;
        *why = "exp argument always exceeds " + format_real(kExpOverflow) +
               " (overflows to inf on every pair)";
        return true;
      }
      return false;
    }
    default:
      return false;
  }
}

void lint_constant_kernel(const ProblemPlan& plan, const AnalysisInputs& in,
                          DiagnosticEngine* diags) {
  const KernelInfo& kernel = plan.kernel;
  if (kernel.kernel_ir == nullptr || kernel.is_gravity) return;
  const ExprFacts f = analyze_expr(kernel.kernel_ir, in);
  if (f.depends_on_dist || f.depends_on_coords) return;
  diags->warning("PTL-W101", "kernel",
                 "kernel value " +
                     (f.range.is_point() ? format_real(f.range.lo)
                                         : std::string("is constant")) +
                     " does not depend on the point pair; every output slot "
                     "receives the same reduction of a constant");
}

void lint_indicator_bounds(const ProblemPlan& plan, const KernelFacts& facts,
                           DiagnosticEngine* diags) {
  if (!facts.envelope_indicator) return;
  const KernelInfo& kernel = plan.kernel;
  const real_t lo = kernel.indicator_lo;
  const real_t hi = kernel.indicator_hi;
  const std::string bounds =
      "I(" + format_real(lo) + " < d < " + format_real(hi) + ")";
  if (lo >= hi) {
    diags->warning("PTL-W102", "kernel/envelope",
                   "prune condition " + bounds +
                       " is unsatisfiable (lower bound >= upper bound): the "
                       "kernel is identically zero");
    return;
  }
  // Disjoint from the achievable distance interval between the datasets'
  // bounding boxes: also identically zero for *these* datasets.
  if (lo >= facts.dist_hi || hi <= facts.dist_lo) {
    diags->warning("PTL-W102", "kernel/envelope",
                   "prune condition " + bounds +
                       " never holds for these datasets (achievable distance "
                       "range is [" + format_real(facts.dist_lo) + ", " +
                       format_real(facts.dist_hi) +
                       "]): the kernel is identically zero");
    return;
  }
  if (lo < facts.dist_lo && hi > facts.dist_hi && facts.dist_hi < kInf) {
    diags->warning("PTL-W103", "kernel/envelope",
                   "prune condition " + bounds +
                       " holds for every pair (achievable distance range is "
                       "[" + format_real(facts.dist_lo) + ", " +
                       format_real(facts.dist_hi) +
                       "]): the traversal selects everything and prunes "
                       "nothing");
  }
}

void lint_nonfinite_kernel(const ProblemPlan& plan, const AnalysisInputs& in,
                           DiagnosticEngine* diags) {
  const KernelInfo& kernel = plan.kernel;
  if (kernel.kernel_ir == nullptr || kernel.is_gravity) return;
  std::string where, why;
  if (find_guaranteed_nonfinite(kernel.kernel_ir, in, "kernel", &where, &why)) {
    diags->warning("PTL-W104", where, "kernel is guaranteed non-finite: " + why);
  }
}

void lint_disabled_prune(const ProblemPlan& plan, const KernelFacts& facts,
                         DiagnosticEngine* diags) {
  if (plan.layers.empty()) return;
  const PortalOp op = plan.layers.back().op.op;
  if (!op_is_comparative(op) || facts.reduction_prune_legal) return;
  std::string reason;
  if (!plan.kernel.normalized) {
    reason = "the kernel is opaque to the analyzer";
  } else if (facts.envelope_indicator) {
    reason = "an indicator envelope gives every pair the same two values, so "
             "the reduction bound carries no information";
  } else {
    reason = "the envelope is not provably monotone in the distance";
  }
  diags->warning(
      "PTL-W105", "layers/" + std::string(op_name(op)),
      std::string(op_name(op)) +
          " requests a pruning traversal but no prune rule can be generated "
          "(" + reason + "): the traversal silently runs exhaustively");
}

void lint_ignored_tau(const ProblemPlan& plan, const PortalConfig& config,
                      DiagnosticEngine* diags) {
  if (!config.tau_explicit) return;
  if (plan.category == ProblemCategory::Approximation) return;
  diags->warning("PTL-W106", "config/tau",
                 "tau=" + format_real(config.tau) + " supplied but the " +
                     category_name(plan.category) +
                     " problem family never reads it (tau only drives "
                     "approximation problems)");
}

} // namespace

void lint_plan(const ProblemPlan& plan, const PortalConfig& config,
               const KernelFacts& facts, const AnalysisInputs& inputs,
               DiagnosticEngine* diags) {
  lint_constant_kernel(plan, inputs, diags);
  lint_indicator_bounds(plan, facts, diags);
  lint_nonfinite_kernel(plan, inputs, diags);
  lint_disabled_prune(plan, facts, diags);
  lint_ignored_tau(plan, config, diags);
}

} // namespace portal
