#include "core/portal_expr.h"

#include <stdexcept>

#include "core/analysis.h"
#include "core/analysis/dataflow.h"
#include "core/analysis/lint.h"
#include "core/ir/ir_hash.h"
#include "core/tuner.h"
#include "core/codegen/jit.h"
#include "core/codegen/pattern.h"
#include "core/codegen/vm.h"
#include "core/passes/lowering.h"
#include "core/passes/passes.h"
#include "obs/trace.h"
#include "util/log.h"
#include "util/timer.h"

namespace portal {

struct JitModuleHolder {
  std::unique_ptr<JitModule> module;
};

PortalExpr::PortalExpr() : trees_(std::make_shared<TreeCache>()) {}
PortalExpr::~PortalExpr() = default;

PortalExpr& PortalExpr::addLayer(OpSpec op, const Storage& data) {
  LayerSpec layer;
  layer.op = op;
  layer.storage = data;
  layers_.push_back(std::move(layer));
  compiled_ = false;
  return *this;
}

PortalExpr& PortalExpr::addLayer(OpSpec op, const Storage& data,
                                 const PortalFunc& func) {
  LayerSpec layer;
  layer.op = op;
  layer.storage = data;
  layer.func = func;
  layers_.push_back(std::move(layer));
  compiled_ = false;
  return *this;
}

PortalExpr& PortalExpr::addLayer(OpSpec op, const Var& var, const Storage& data) {
  LayerSpec layer;
  layer.op = op;
  layer.storage = data;
  layer.var_id = var.id();
  layers_.push_back(std::move(layer));
  compiled_ = false;
  return *this;
}

PortalExpr& PortalExpr::addLayer(OpSpec op, const Var& var, const Storage& data,
                                 const Expr& kernel) {
  LayerSpec layer;
  layer.op = op;
  layer.storage = data;
  layer.var_id = var.id();
  layer.custom_kernel = kernel;
  layers_.push_back(std::move(layer));
  compiled_ = false;
  return *this;
}

PortalExpr& PortalExpr::addLayer(OpSpec op, const Storage& data,
                                 ExternalKernelFn kernel, std::string label) {
  LayerSpec layer;
  layer.op = op;
  layer.storage = data;
  layer.external = std::move(kernel);
  layer.external_label = std::move(label);
  layers_.push_back(std::move(layer));
  compiled_ = false;
  return *this;
}

PortalExpr& PortalExpr::addLayerSpec(LayerSpec layer) {
  layers_.push_back(std::move(layer));
  compiled_ = false;
  return *this;
}

void PortalExpr::invalidate() {
  compiled_ = false;
  trees_ = std::make_shared<TreeCache>();
  jit_.reset();
}

const ProblemPlan& PortalExpr::plan() const {
  if (!compiled_)
    throw std::logic_error("PortalExpr::plan: call execute() first");
  return plan_;
}

void PortalExpr::compile_if_needed() {
  if (compiled_) return;
  PORTAL_OBS_SCOPE(compile_scope, "compile/total");
  Timer timer;
  artifacts_ = CompileArtifacts{};

  // Front end: analysis + classification (the prune/approximate generator).
  plan_ = analyze_layers(layers_, config_);
  artifacts_.problem_description = plan_.description;

  // Middle end: lowering + storage injection, then the optimization passes.
  if (!plan_.kernel.is_gravity || plan_.kernel.kernel_ir) {
    plan_.ir = build_ir_program(plan_, config_.tau);
    PassManager passes(config_.strength_reduction, config_.dump_ir,
                       config_.verify_ir);
    const AnalysisInputs analysis_inputs = make_analysis_inputs(plan_, config_);
    // The per-function analysis summary rides in the verify sandwich report,
    // so it honors the same switch: verify_ir = false means an empty report.
    const bool report_analysis = config_.verify_ir;
    passes.set_analysis_hook(
        [&analysis_inputs, report_analysis](const IrProgram& program,
                                            CompileArtifacts* arts) {
          if (arts == nullptr || !report_analysis) return;
          arts->verify_report +=
              analyze_program_summary(program, analysis_inputs);
        });
    const LayerSpec& outer = plan_.layers[0];
    const LayerSpec& inner = plan_.layers[1];
    IrVerifyContext vc;
    vc.dim = outer.storage.dim();
    vc.query_layout = outer.storage.layout();
    vc.query_size = outer.storage.size();
    vc.ref_layout = inner.storage.layout();
    vc.ref_size = inner.storage.size();
    plan_.ir = passes.run(plan_.ir, vc, &artifacts_);
    // The kernel/envelope the backends execute are the post-pass versions:
    // pull them back out of the BaseCase assignment.
    const std::function<IrExprPtr(const IrStmtPtr&)> find_kernel =
        [&](const IrStmtPtr& stmt) -> IrExprPtr {
      if (!stmt) return nullptr;
      if (stmt->kind == IrStmtKind::AssignExpr && stmt->target == "t")
        return stmt->expr;
      for (const IrStmtPtr& child : stmt->body)
        if (IrExprPtr found = find_kernel(child)) return found;
      return nullptr;
    };
    if (IrExprPtr optimized = find_kernel(plan_.ir.base_case))
      plan_.kernel.kernel_ir = optimized;
    if (plan_.kernel.normalized && plan_.kernel.envelope_ir) {
      IrExprPtr env = plan_.kernel.envelope_ir;
      env = numerical_optimization_pass(env);
      if (config_.strength_reduction) env = strength_reduction_pass(env);
      env = constant_fold_pass(env);
      if (config_.verify_ir) {
        DiagnosticEngine diags;
        verify_expr(env, IrContext::Envelope, IrVerifyContext{}, &diags,
                    "envelope");
        if (!diags.ok())
          throw PortalDiagnosticError(
              "Portal: envelope IR verification failed:\n" + diags.report(),
              diags.diagnostics());
      }
      plan_.kernel.envelope_ir = env;
      // Re-derive the envelope shape: passes preserve semantics, but the
      // indicator bounds were extracted pre-pass; keep them.
      if (plan_.kernel.shape != EnvelopeShape::Indicator)
        classify_envelope(&plan_.kernel);
    }
  }

  // Analysis facts + lint over the *final* kernel/envelope (post-pass, post
  // re-classification), cached on the plan next to the fingerprint so every
  // backend reads one legality oracle. The facts mirror the legacy rule-set
  // conditions exactly; analysis_gated only switches which oracle answers.
  plan_.analysis_gated = config_.analysis_gated_prune;
  {
    const AnalysisInputs inputs = make_analysis_inputs(plan_, config_);
    plan_.facts = compute_kernel_facts(plan_, inputs);
    DiagnosticEngine lint;
    lint_plan(plan_, config_, plan_.facts, inputs, &lint);
    artifacts_.lint_diagnostics = lint.diagnostics();
    artifacts_.lint_report = lint.report();
  }

  // Canonical plan identity for the serve-layer compiled-plan cache: hash
  // the verified post-pass IR, never the pre-pass form, so two chains that
  // optimize to the same program share one cached plan. Analysis facts are
  // derived data and deliberately not hashed.
  plan_.fingerprint = plan_fingerprint(plan_);

  artifacts_.compile_seconds = timer.elapsed_s();
  compiled_ = true;
}

void PortalExpr::execute(const PortalConfig& config) {
  config_ = config;
  execute();
}

void PortalExpr::execute() {
  PORTAL_OBS_SCOPE(execute_scope, "execute/total");
  // leaf_size == 0: auto-tune on a subsample (paper Sec. V-B's empirical
  // leaf-size tuning as a feature).
  bool tuned_leaf = false;
  if (config_.leaf_size == 0) {
    const TuneReport tuned = tune_leaf_size(layers_, config_);
    config_.leaf_size = tuned.best_leaf_size;
    tuned_leaf = true;
  }
  compile_if_needed(); // resets artifacts_, so record the tuner note after
  if (tuned_leaf)
    artifacts_.pipeline_trace +=
        "leaf-size tuner: picked " + std::to_string(config_.leaf_size) + "\n";

  // Backend selection.
  Engine engine = config_.engine;
  const std::string pattern_name = recognize_pattern(plan_, config_);
  if (engine == Engine::Pattern && pattern_name.empty())
    throw std::invalid_argument(
        "Portal: engine=Pattern requested but no specialized kernel matches "
        "this program");
  if (engine == Engine::Auto) {
    // JIT compilation invokes the system compiler (~0.1-0.5s); only worth it
    // when the candidate work (pair count upper bound) amortizes it.
    const double work_estimate =
        static_cast<double>(plan_.layers[0].storage.size()) *
        static_cast<double>(plan_.layers[1].storage.size());
    if (!pattern_name.empty()) {
      engine = Engine::Pattern;
    } else if (plan_.kernel.external == nullptr && !plan_.kernel.is_gravity &&
               jit_available() && (work_estimate > 5e6 || jit_)) {
      engine = Engine::JIT;
    } else {
      engine = Engine::VM;
    }
  }
  if (plan_.kernel.is_gravity && engine != Engine::Pattern)
    throw std::invalid_argument(
        "Portal: the gravity kernel is vector-valued and only runs through "
        "the pattern backend (engine=Auto or Pattern)");

  ExecutionResult result;
  if (engine == Engine::Pattern) {
    PatternDispatch dispatch = try_pattern_execute(plan_, config_, trees_.get());
    artifacts_.chosen_engine = "pattern:" + dispatch.name;
    result = std::move(dispatch.result);
  } else {
    EvaluatorFns fns;
    if (engine == Engine::JIT) {
      if (!jit_) jit_ = std::make_unique<JitModuleHolder>();
      if (!jit_->module) jit_->module = JitModule::compile(plan_);
      if (!jit_->module)
        throw std::invalid_argument(
            "Portal: this kernel cannot be JIT-compiled (external C++ "
            "callback); use engine=VM or Auto");
      fns = jit_->module->evaluators();
      artifacts_.chosen_engine = "jit";
    } else {
      const VmProgram kernel_vm = VmProgram::compile(plan_.kernel.kernel_ir);
      fns.kernel_pair = [kernel_vm](const real_t* q, const real_t* r,
                                    index_t dim, real_t* scratch) {
        return kernel_vm.run_pair(q, r, dim, scratch);
      };
      // Batched flavor: the same program interpreted across a whole SoA lane
      // tile (bit-for-bit run_pair per lane; see VmProgram::run_batch).
      fns.kernel_batch = [kernel_vm](const real_t* q, const real_t* rlanes,
                                     index_t rstride, index_t rbegin,
                                     index_t count, index_t dim,
                                     real_t* scratch, real_t* out) {
        VmProgram::BatchContext bctx;
        bctx.q = q;
        bctx.rlanes = rlanes;
        bctx.rstride = rstride;
        bctx.rbegin = rbegin;
        bctx.count = count;
        bctx.dim = dim;
        bctx.scratch = scratch;
        kernel_vm.run_batch(bctx, out);
      };
      if (plan_.kernel.normalized && plan_.kernel.envelope_ir) {
        const VmProgram env_vm = VmProgram::compile(plan_.kernel.envelope_ir);
        fns.envelope = [env_vm](real_t d) { return env_vm.run_envelope(d); };
      }
      artifacts_.chosen_engine = "vm";
    }
    result = execute_generic(plan_, config_, fns, trees_.get());
  }

  artifacts_.tree_build_seconds = result.tree_seconds;
  artifacts_.traversal_seconds = result.traversal_seconds;
  stats_ = result.stats;
  output_ = Storage(result.output);
  if (obs::enabled())
    obs::instant_event("engine/" + artifacts_.chosen_engine);

  // Validation mode: run the generated brute-force program and compare
  // (approximation problems validate within the tau-derived bound instead).
  if (config_.validate) {
    const Storage brute = executeBruteForce();
    real_t tolerance = config_.validate_tolerance;
    if (plan_.category == ProblemCategory::Approximation)
      tolerance = std::max(
          tolerance,
          config_.tau * static_cast<real_t>(plan_.layers[1].storage.size()));
    const std::string mismatch =
        compare_outputs(brute.output(), output_.output(), tolerance);
    if (!mismatch.empty())
      throw std::runtime_error("Portal validation failed: " + mismatch);
  }
}

Storage PortalExpr::executeBruteForce() {
  compile_if_needed();
  if (plan_.kernel.is_gravity)
    throw std::invalid_argument(
        "Portal: brute-force gravity runs through bh_bruteforce");

  EvaluatorFns fns;
  const VmProgram kernel_vm = VmProgram::compile(plan_.kernel.kernel_ir);
  fns.kernel_pair = [kernel_vm](const real_t* q, const real_t* r, index_t dim,
                                real_t* scratch) {
    return kernel_vm.run_pair(q, r, dim, scratch);
  };
  if (plan_.kernel.normalized && plan_.kernel.envelope_ir) {
    const VmProgram env_vm = VmProgram::compile(plan_.kernel.envelope_ir);
    fns.envelope = [env_vm](real_t d) { return env_vm.run_envelope(d); };
  }
  const ExecutionResult result = execute_bruteforce(plan_, config_, fns);
  return Storage(result.output);
}

Storage PortalExpr::getOutput() const {
  if (output_.empty())
    throw std::logic_error("PortalExpr::getOutput: call execute() first");
  return output_;
}

} // namespace portal
