// Portal -- the optimization passes of Sec. IV-C/D/E/F and the pass manager
// that drives them (the Fig. 1 pipeline).
//
// Every pass is an IR-expression rewrite applied across the whole IrProgram;
// the pass manager records per-pass snapshots so the Fig. 1-3 benches can
// show the IR after each stage, exactly as the paper's figures do.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/ir/ir.h"
#include "core/plan.h"
#include "core/verify/verify.h"
#include "data/dataset.h"

namespace portal {

/// Sec. IV-C flattening: multi-dimensional loads become one-dimensional
/// base + d * stride accesses, with the stride chosen by the dataset layout
/// (1 for row-major points, N for column-major dimension slices).
IrExprPtr flatten_pass(const IrExprPtr& expr, Layout query_layout,
                       index_t query_size, Layout ref_layout, index_t ref_size);

/// Sec. IV-D numerical optimization: the naive Mahalanobis quadratic form
/// (explicit Sigma^{-1}) is rewritten into Cholesky + forward substitution
/// (m^3 -> m^2/2). The rewritten node carries the precomputed L factor.
IrExprPtr numerical_optimization_pass(const IrExprPtr& expr);

/// Sec. IV-E strength reduction: pow with integer exponent < 4 -> chained
/// multiply; sqrt -> NaN-safe fast inverse square root form; 1/sqrt ->
/// fast_inv_sqrt.
IrExprPtr strength_reduction_pass(const IrExprPtr& expr);

/// Standard cleanups the backend applies before emission (Sec. IV-F
/// "constant-folding and dead-code elimination").
IrExprPtr constant_fold_pass(const IrExprPtr& expr);

/// Dead-code elimination over the statement IR: assignments to named temps
/// that no later expression, accumulation, or reduction reads are removed
/// (Sec. IV-F). Storage targets (storage0/storage1 slots) are live by
/// definition -- they are the program's outputs.
IrStmtPtr dce_pass(const IrStmtPtr& root);

/// Runs the pipeline over an IrProgram, recording artifacts.
class PassManager {
 public:
  PassManager(bool enable_strength_reduction, bool dump_ir,
              bool verify_each = true)
      : strength_(enable_strength_reduction), dump_(dump_ir),
        verify_each_(verify_each) {}

  /// Applies flattening -> numerical optimization -> strength reduction ->
  /// constant folding to all three traversal functions; returns the final
  /// program and fills `artifacts`. With verify_each (PortalConfig::verify_ir)
  /// the verifier sandwiches every stage: once on the lowered input, then
  /// after each pass -- a pass that breaks an invariant is caught at its own
  /// boundary, not three passes later. Errors throw PortalDiagnosticError.
  IrProgram run(const IrProgram& input, const IrVerifyContext& vc,
                CompileArtifacts* artifacts);

  /// Optional analysis stage running inside the verify sandwich, after the
  /// final post-DCE verification: receives the verified final program so it
  /// can record per-function dataflow facts on the artifacts (ISSUE 6 --
  /// the analysis framework plugs in here without passes.cpp depending on
  /// core/analysis).
  using AnalysisHook =
      std::function<void(const IrProgram&, CompileArtifacts*)>;
  void set_analysis_hook(AnalysisHook hook) { analysis_hook_ = std::move(hook); }

 private:
  bool strength_;
  bool dump_;
  bool verify_each_;
  AnalysisHook analysis_hook_;
};

} // namespace portal
