#include "core/passes/lowering.h"

#include <stdexcept>

#include "kernels/linalg.h"

namespace portal {
namespace {

/// Does this AST subtree match a whole metric pattern between q and r?
/// Recognized shapes (Sec. III-C's pre-defined metrics, as a user would also
/// write them by hand):
///   DimSum(Pow(q - r, 2))        -> SqEuclidean
///   Sqrt(DimSum(Pow(q - r, 2)))  -> Euclidean
///   DimSum(Abs(q - r))           -> Manhattan
///   DimMax(Abs(q - r))           -> Chebyshev
///   Mahalanobis(q, r)            -> Mahalanobis (squared)
bool is_point_diff(const ExprNodePtr& node, int q_var, int r_var) {
  if (node->kind != ExprKind::Sub) return false;
  const ExprNodePtr& a = node->children[0];
  const ExprNodePtr& b = node->children[1];
  if (a->kind != ExprKind::VarRef || b->kind != ExprKind::VarRef) return false;
  return (a->var_id == q_var && b->var_id == r_var) ||
         (a->var_id == r_var && b->var_id == q_var);
}

std::optional<MetricKind> match_metric(const ExprNodePtr& node, int q_var,
                                       int r_var) {
  switch (node->kind) {
    case ExprKind::Sqrt: {
      const ExprNodePtr& inner = node->children[0];
      if (inner->kind == ExprKind::DimSum &&
          inner->children[0]->kind == ExprKind::Pow &&
          inner->children[0]->value == 2 &&
          is_point_diff(inner->children[0]->children[0], q_var, r_var))
        return MetricKind::Euclidean;
      return std::nullopt;
    }
    case ExprKind::DimSum: {
      const ExprNodePtr& body = node->children[0];
      if (body->kind == ExprKind::Pow && body->value == 2 &&
          is_point_diff(body->children[0], q_var, r_var))
        return MetricKind::SqEuclidean;
      if (body->kind == ExprKind::Abs &&
          is_point_diff(body->children[0], q_var, r_var))
        return MetricKind::Manhattan;
      return std::nullopt;
    }
    case ExprKind::DimMax: {
      const ExprNodePtr& body = node->children[0];
      if (body->kind == ExprKind::Abs &&
          is_point_diff(body->children[0], q_var, r_var))
        return MetricKind::Chebyshev;
      return std::nullopt;
    }
    case ExprKind::Mahalanobis:
      if ((node->var_id == q_var && node->var_id2 == r_var) ||
          (node->var_id == r_var && node->var_id2 == q_var))
        return MetricKind::Mahalanobis;
      return std::nullopt;
    default:
      return std::nullopt;
  }
}

struct LowerContext {
  int q_var;
  int r_var;
  const std::vector<real_t>* resolved_cov;
  // Normalization mode: replace metric subtrees by Dist and record the kind.
  bool normalize = false;
  std::optional<MetricKind> metric;
  bool failed = false;
};

IrExprPtr lower(const ExprNodePtr& node, LowerContext& ctx) {
  if (ctx.normalize) {
    if (const auto metric = match_metric(node, ctx.q_var, ctx.r_var)) {
      if (ctx.metric && *ctx.metric != *metric) {
        ctx.failed = true; // two different metrics: cannot normalize
        return ir_const(0);
      }
      ctx.metric = *metric;
      return ir_leaf(IrOp::Dist);
    }
  }

  auto child = [&](std::size_t i) { return lower(node->children[i], ctx); };
  switch (node->kind) {
    case ExprKind::Const:
      return ir_const(node->value);
    case ExprKind::VarRef:
      if (ctx.normalize) {
        // A point reference outside a metric pattern: envelope extraction
        // fails; the kernel stays a full point-pair expression.
        ctx.failed = true;
        return ir_const(0);
      }
      if (node->var_id == ctx.q_var) return ir_leaf(IrOp::LoadQCoord);
      if (node->var_id == ctx.r_var) return ir_leaf(IrOp::LoadRCoord);
      throw std::invalid_argument(
          "Portal: kernel references Var '" + node->label +
          "' which is not bound to any layer");
    case ExprKind::Add: return ir_binary(IrOp::Add, child(0), child(1));
    case ExprKind::Sub: return ir_binary(IrOp::Sub, child(0), child(1));
    case ExprKind::Mul: return ir_binary(IrOp::Mul, child(0), child(1));
    case ExprKind::Div: return ir_binary(IrOp::Div, child(0), child(1));
    case ExprKind::Neg: return ir_unary(IrOp::Neg, child(0));
    case ExprKind::Abs: return ir_unary(IrOp::Abs, child(0));
    case ExprKind::Pow: return ir_pow(child(0), node->value);
    case ExprKind::Sqrt: return ir_unary(IrOp::Sqrt, child(0));
    case ExprKind::Exp: return ir_unary(IrOp::Exp, child(0));
    case ExprKind::Log: return ir_unary(IrOp::Log, child(0));
    case ExprKind::DimSum: return ir_unary(IrOp::DimSum, child(0));
    case ExprKind::DimMax: return ir_unary(IrOp::DimMax, child(0));
    case ExprKind::Min2: return ir_binary(IrOp::Min, child(0), child(1));
    case ExprKind::Max2: return ir_binary(IrOp::Max, child(0), child(1));
    case ExprKind::Less: return ir_binary(IrOp::Less, child(0), child(1));
    case ExprKind::Greater: return ir_binary(IrOp::Greater, child(0), child(1));
    case ExprKind::Mahalanobis: {
      if (ctx.normalize) {
        // Reached only if metric matching above failed (vars not layer-bound).
        ctx.failed = true;
        return ir_const(0);
      }
      IrExpr e;
      e.op = IrOp::MahalanobisNaive;
      e.matrix = node->matrix.empty() ? *ctx.resolved_cov : node->matrix;
      if (e.matrix.empty())
        throw std::invalid_argument(
            "Portal: Mahalanobis kernel needs a covariance (none provided and "
            "none derivable)");
      return std::make_shared<const IrExpr>(std::move(e));
    }
    case ExprKind::External: {
      IrExpr e;
      e.op = IrOp::ExternalCall;
      e.external = node->external;
      e.label = node->label;
      return std::make_shared<const IrExpr>(std::move(e));
    }
  }
  throw std::logic_error("lower_kernel_expr: unhandled AST node");
}

} // namespace

IrExprPtr lower_kernel_expr(const Expr& ast, int q_var, int r_var,
                            const std::vector<real_t>& resolved_cov) {
  if (!ast.valid()) throw std::invalid_argument("Portal: empty kernel");
  LowerContext ctx{q_var, r_var, &resolved_cov, false, std::nullopt, false};
  return lower(ast.node(), ctx);
}

NormalizedKernel normalize_kernel(const Expr& ast, int q_var, int r_var,
                                  const std::vector<real_t>& resolved_cov) {
  NormalizedKernel result;
  if (!ast.valid()) return result;
  LowerContext ctx{q_var, r_var, &resolved_cov, true, std::nullopt, false};
  IrExprPtr envelope = lower(ast.node(), ctx);
  if (ctx.failed || !ctx.metric) return result;
  result.ok = true;
  result.metric = *ctx.metric;
  result.envelope = std::move(envelope);
  return result;
}

// ---------------------------------------------------------------------------
// Statement-level IR construction (the Fig. 2/3 skeletons).

IrProgram build_ir_program(const ProblemPlan& plan, real_t tau) {
  (void)tau;
  IrProgram program;
  const LayerSpec& outer = plan.layers.front();
  const LayerSpec& inner = plan.layers.back();

  // --- BaseCase: loop nest + storage injection (Sec. IV-A/B). -------------
  // Named temp referencing the freshly lowered kernel value.
  IrExpr t_node;
  t_node.op = IrOp::Temp;
  t_node.label = "t";
  const IrExprPtr t_ref = std::make_shared<const IrExpr>(std::move(t_node));

  std::vector<IrStmtPtr> inner_body;
  inner_body.push_back(ir_comment("lowering the kernel function"));
  inner_body.push_back(ir_assign("t", plan.kernel.kernel_ir));
  const std::string inner_target =
      op_category(inner.op.op) == OpCategory::All ? "storage1[r]" : "storage1";
  switch (inner.op.op) {
    case PortalOp::SUM:
      inner_body.push_back(ir_accum("storage1", "+", t_ref));
      break;
    case PortalOp::PROD:
      inner_body.push_back(ir_accum("storage1", "*", t_ref));
      break;
    default:
      inner_body.push_back(
          ir_reduce(inner_target, op_math_symbol(inner.op), t_ref));
      break;
  }
  std::vector<IrStmtPtr> outer_body;
  outer_body.push_back(ir_comment("storage injection for inner layer"));
  std::string inner_alloc;
  switch (op_category(inner.op.op)) {
    case OpCategory::Single:
      inner_alloc = "storage1 = " +
                    std::string(op_is_min_like(inner.op.op)
                                    ? "max_numeric_limit"
                                    : (op_is_max_like(inner.op.op)
                                           ? "lowest_numeric_limit"
                                           : (inner.op.op == PortalOp::PROD
                                                  ? "1"
                                                  : "0")));
      break;
    case OpCategory::Multi:
      inner_alloc =
          "storage1[" + std::to_string(inner.op.k) + "] (sorted candidate list)";
      break;
    case OpCategory::All:
      inner_alloc = "storage1[reference.size]";
      break;
  }
  outer_body.push_back(ir_alloc(inner_alloc));
  outer_body.push_back(
      ir_loop("r in reference.start ... reference.end", std::move(inner_body)));

  std::vector<IrStmtPtr> base;
  base.push_back(ir_comment("storage injection for outer layer"));
  switch (op_category(outer.op.op)) {
    case OpCategory::All:
      base.push_back(ir_alloc("storage0[query.size]"));
      break;
    case OpCategory::Single:
      base.push_back(ir_alloc("storage0 (single reduction slot)"));
      break;
    case OpCategory::Multi:
      base.push_back(ir_alloc("storage0[" + std::to_string(outer.op.k) + "]"));
      break;
  }
  IrExpr s1_node;
  s1_node.op = IrOp::Temp;
  s1_node.label = "storage1";
  const IrExprPtr s1_ref = std::make_shared<const IrExpr>(std::move(s1_node));
  outer_body.push_back(outer.op.op == PortalOp::FORALL
                           ? ir_assign("storage0[q]", s1_ref)
                           : ir_reduce("storage0", op_math_symbol(outer.op),
                                       s1_ref));
  base.push_back(ir_loop("q in query.start ... query.end", std::move(outer_body)));
  program.base_case = ir_block(std::move(base));

  // --- Prune/Approximate (Sec. II-C + Table III conditions). ---------------
  std::vector<IrStmtPtr> prune;
  switch (plan.category) {
    case ProblemCategory::Pruning: {
      if (plan.kernel.shape == EnvelopeShape::Indicator) {
        prune.push_back(ir_comment(
            "indicator kernel: discard node pairs outside the support, "
            "bulk-accept node pairs entirely inside"));
        prune.push_back(ir_return(ir_binary(
            IrOp::Greater, ir_leaf(IrOp::DMin), ir_const(plan.kernel.indicator_hi))));
      } else {
        prune.push_back(ir_comment(
            "comparative reduction: prune when the best possible kernel value "
            "in this pair cannot beat the per-node bound"));
        prune.push_back(ir_return(
            ir_binary(IrOp::Greater, ir_leaf(IrOp::DMin), ir_leaf(IrOp::QueryBound))));
      }
      break;
    }
    case ProblemCategory::Approximation: {
      prune.push_back(ir_comment(
          "approximate when the kernel varies less than tau across the pair"));
      IrExprPtr k_at_dmin = ir_rewrite(
          plan.kernel.envelope_ir, [](const IrExprPtr& node) -> IrExprPtr {
            return node->op == IrOp::Dist ? ir_leaf(IrOp::DMin) : nullptr;
          });
      IrExprPtr k_at_dmax = ir_rewrite(
          plan.kernel.envelope_ir, [](const IrExprPtr& node) -> IrExprPtr {
            return node->op == IrOp::Dist ? ir_leaf(IrOp::DMax) : nullptr;
          });
      prune.push_back(ir_return(
          ir_binary(IrOp::Less,
                    ir_binary(IrOp::Sub, std::move(k_at_dmin), std::move(k_at_dmax)),
                    ir_leaf(IrOp::Tau))));
      break;
    }
    case ProblemCategory::Exhaustive:
      prune.push_back(
          ir_comment("kernel opaque to the generator: no pruning possible"));
      prune.push_back(ir_return(ir_const(0)));
      break;
  }
  program.prune_approx = ir_block(std::move(prune));

  // --- ComputeApprox. -------------------------------------------------------
  std::vector<IrStmtPtr> approx;
  if (plan.category == ProblemCategory::Approximation) {
    approx.push_back(ir_comment(
        "center contribution times node density (Barnes-Hut: center of mass)"));
    IrExprPtr center_kernel = ir_rewrite(
        plan.kernel.envelope_ir, [](const IrExprPtr& node) -> IrExprPtr {
          return node->op == IrOp::Dist ? ir_leaf(IrOp::CenterDist) : nullptr;
        });
    approx.push_back(ir_return(
        ir_binary(IrOp::Mul, ir_leaf(IrOp::RCount), std::move(center_kernel))));
  } else {
    approx.push_back(ir_comment(std::string(category_name(plan.category)) +
                                " problem, hence there is no approximation"));
    approx.push_back(ir_return(ir_const(0)));
  }
  program.compute_approx = ir_block(std::move(approx));

  return program;
}

} // namespace portal
