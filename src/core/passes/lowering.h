// Portal -- lowering (paper Sec. IV-A/IV-B): user-level Expr kernels become
// Portal IR, and the layer stack becomes the loop-nest + storage-injection
// skeleton of the three traversal functions (Figs. 2-3).
#pragma once

#include <optional>

#include "core/ir/ir.h"
#include "core/plan.h"
#include "core/var_expr.h"

namespace portal {

/// Lower a scalar kernel expression to IR. `q_var` / `r_var` are the Var ids
/// bound to the outer (query) and inner (reference) layers. Mahalanobis nodes
/// with an empty covariance use `resolved_cov` (computed from the reference
/// dataset by the analysis step). Throws on vars not bound to a layer.
IrExprPtr lower_kernel_expr(const Expr& ast, int q_var, int r_var,
                            const std::vector<real_t>& resolved_cov);

/// Result of the metric/envelope normalization: kernel = envelope(metric).
struct NormalizedKernel {
  bool ok = false;
  MetricKind metric = MetricKind::SqEuclidean;
  IrExprPtr envelope; // kernel IR with the metric subtree replaced by Dist
};

/// Try to split the kernel into metric + envelope. Fails (ok = false) when
/// the kernel references points outside a recognizable metric pattern.
NormalizedKernel normalize_kernel(const Expr& ast, int q_var, int r_var,
                                  const std::vector<real_t>& resolved_cov);

/// Build the Fig. 2/3-style statement IR for the three traversal functions
/// from an analyzed plan (storage injection per Table I category, loop
/// synthesis, reduction updates). Purely structural: the executor runs the
/// same semantics through its reducers.
IrProgram build_ir_program(const ProblemPlan& plan, real_t tau);

} // namespace portal
