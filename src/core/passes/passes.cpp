#include "core/passes/passes.h"

#include <cmath>
#include <set>

#include "kernels/linalg.h"
#include "obs/trace.h"
#include "util/log.h"

namespace portal {
namespace {

IrExprPtr clone_with(const IrExprPtr& node, const std::function<void(IrExpr&)>& edit) {
  IrExpr copy = *node;
  edit(copy);
  return std::make_shared<const IrExpr>(std::move(copy));
}

bool is_const(const IrExprPtr& node, real_t value) {
  return node->op == IrOp::Const && node->value == value;
}

} // namespace

IrExprPtr flatten_pass(const IrExprPtr& expr, Layout query_layout,
                       index_t query_size, Layout ref_layout, index_t ref_size) {
  return ir_rewrite(expr, [&](const IrExprPtr& node) -> IrExprPtr {
    if (node->op == IrOp::LoadQCoord && !node->flattened) {
      return clone_with(node, [&](IrExpr& e) {
        e.flattened = true;
        e.stride = query_layout == Layout::RowMajor ? 1 : query_size;
      });
    }
    if (node->op == IrOp::LoadRCoord && !node->flattened) {
      return clone_with(node, [&](IrExpr& e) {
        e.flattened = true;
        e.stride = ref_layout == Layout::RowMajor ? 1 : ref_size;
      });
    }
    return nullptr;
  });
}

IrExprPtr numerical_optimization_pass(const IrExprPtr& expr) {
  return ir_rewrite(expr, [](const IrExprPtr& node) -> IrExprPtr {
    if (node->op != IrOp::MahalanobisNaive) return nullptr;
    const index_t m = static_cast<index_t>(
        std::llround(std::sqrt(static_cast<double>(node->matrix.size()))));
    return clone_with(node, [&](IrExpr& e) {
      e.op = IrOp::MahalanobisChol;
      e.matrix = cholesky(node->matrix, m); // store the L factor
    });
  });
}

IrExprPtr strength_reduction_pass(const IrExprPtr& expr) {
  return ir_rewrite(expr, [](const IrExprPtr& node) -> IrExprPtr {
    // pow(x, n) with integer 0 <= n < 4 -> chained multiplication.
    if (node->op == IrOp::Pow) {
      const real_t exponent = node->value;
      if (exponent == std::nearbyint(exponent) && exponent >= 0 && exponent < 4) {
        const int n = static_cast<int>(exponent);
        const IrExprPtr& x = node->children[0];
        switch (n) {
          case 0: return ir_const(1);
          case 1: return x;
          case 2: return ir_binary(IrOp::Mul, x, x);
          case 3: return ir_binary(IrOp::Mul, ir_binary(IrOp::Mul, x, x), x);
          default: break;
        }
      }
      return nullptr;
    }
    // 1 / sqrt(x) -> fast_inv_sqrt(x). ir_rewrite runs bottom-up, so by the
    // time the Div is visited its sqrt child has already become FastSqrt.
    if (node->op == IrOp::Div && is_const(node->children[0], 1) &&
        (node->children[1]->op == IrOp::Sqrt ||
         node->children[1]->op == IrOp::FastSqrt)) {
      return ir_unary(IrOp::FastInvSqrt, node->children[1]->children[0]);
    }
    if (node->op == IrOp::InvSqrt)
      return ir_unary(IrOp::FastInvSqrt, node->children[0]);
    // sqrt(x) -> 1/(1/fast_inverse_sqrt(x)), the NaN-safe variant (Sec. IV-E).
    if (node->op == IrOp::Sqrt)
      return ir_unary(IrOp::FastSqrt, node->children[0]);
    return nullptr;
  });
}

IrExprPtr constant_fold_pass(const IrExprPtr& expr) {
  return ir_rewrite(expr, [](const IrExprPtr& node) -> IrExprPtr {
    const auto all_const = [&]() {
      for (const IrExprPtr& child : node->children)
        if (child->op != IrOp::Const) return false;
      return !node->children.empty();
    };
    const auto c0 = [&]() { return node->children[0]->value; };
    const auto c1 = [&]() { return node->children[1]->value; };

    switch (node->op) {
      case IrOp::Add:
        if (all_const()) return ir_const(c0() + c1());
        if (is_const(node->children[0], 0)) return node->children[1];
        if (is_const(node->children[1], 0)) return node->children[0];
        return nullptr;
      case IrOp::Sub:
        if (all_const()) return ir_const(c0() - c1());
        if (is_const(node->children[1], 0)) return node->children[0];
        return nullptr;
      case IrOp::Mul:
        if (all_const()) return ir_const(c0() * c1());
        if (is_const(node->children[0], 1)) return node->children[1];
        if (is_const(node->children[1], 1)) return node->children[0];
        // x * 0 is NOT folded: x may be inf/NaN at runtime.
        return nullptr;
      case IrOp::Div:
        if (all_const() && c1() != 0) return ir_const(c0() / c1());
        if (is_const(node->children[1], 1)) return node->children[0];
        return nullptr;
      case IrOp::Neg:
        if (all_const()) return ir_const(-c0());
        return nullptr;
      case IrOp::Abs:
        if (all_const()) return ir_const(std::abs(c0()));
        return nullptr;
      case IrOp::Pow:
        if (all_const()) return ir_const(std::pow(c0(), node->value));
        return nullptr;
      case IrOp::Sqrt:
        if (all_const() && c0() >= 0) return ir_const(std::sqrt(c0()));
        return nullptr;
      case IrOp::Exp:
        if (all_const()) return ir_const(std::exp(c0()));
        return nullptr;
      case IrOp::Log:
        if (all_const() && c0() > 0) return ir_const(std::log(c0()));
        return nullptr;
      default:
        return nullptr;
    }
  });
}

namespace {

/// Collect the names of Temp leaves referenced anywhere under a statement.
void collect_temp_reads(const IrExprPtr& expr, std::set<std::string>* out) {
  if (!expr) return;
  if (expr->op == IrOp::Temp) out->insert(expr->label);
  for (const IrExprPtr& child : expr->children) collect_temp_reads(child, out);
}

void collect_temp_reads(const IrStmtPtr& stmt, std::set<std::string>* out) {
  if (!stmt) return;
  collect_temp_reads(stmt->expr, out);
  // Accumulations and reductions read their own target.
  if (stmt->kind == IrStmtKind::Accum || stmt->kind == IrStmtKind::ReduceCmp)
    out->insert(stmt->target);
  for (const IrStmtPtr& child : stmt->body) collect_temp_reads(child, out);
}

bool is_storage_target(const std::string& target) {
  return target.rfind("storage", 0) == 0;
}

} // namespace

IrStmtPtr dce_pass(const IrStmtPtr& root) {
  if (!root) return root;
  std::set<std::string> live;
  collect_temp_reads(root, &live);

  const std::function<IrStmtPtr(const IrStmtPtr&)> strip =
      [&](const IrStmtPtr& stmt) -> IrStmtPtr {
    if (!stmt) return stmt;
    if (stmt->kind == IrStmtKind::AssignExpr && !is_storage_target(stmt->target) &&
        live.count(stmt->target) == 0)
      return nullptr; // dead temp assignment
    if (stmt->body.empty()) return stmt;
    IrStmt copy = *stmt;
    copy.body.clear();
    for (const IrStmtPtr& child : stmt->body)
      if (IrStmtPtr kept = strip(child)) copy.body.push_back(std::move(kept));
    return std::make_shared<const IrStmt>(std::move(copy));
  };
  return strip(root);
}

IrProgram PassManager::run(const IrProgram& input, const IrVerifyContext& vc,
                           CompileArtifacts* artifacts) {
  PORTAL_OBS_SCOPE(pipeline_scope, "compile/passes");
  IrProgram program = input;
  std::string trace;

  // The -verify-each sandwich: re-check well-formedness at every pass
  // boundary. From flattening onward loads must carry metadata matching the
  // dataset layout, so the context tightens as the pipeline progresses.
  IrVerifyContext stage_vc = vc;
  stage_vc.after_flattening = false;
  stage_vc.check_strides = false;
  const auto verify_stage = [&](const char* stage) {
    if (!verify_each_) return;
    PORTAL_OBS_SCOPE(verify_scope, "verify/pass-sandwich");
    DiagnosticEngine diags = verify_program(program, stage_vc);
    if (artifacts != nullptr) {
      artifacts->verify_report += std::string("verify ") + stage + ": " +
                                  std::to_string(diags.error_count()) +
                                  " error(s), " +
                                  std::to_string(diags.warning_count()) +
                                  " warning(s)\n";
      if (!diags.empty()) artifacts->verify_report += diags.report();
    }
    if (!diags.ok())
      throw PortalDiagnosticError(
          "Portal: IR verification failed after " + std::string(stage) + " (" +
              std::to_string(diags.error_count()) + " error(s)):\n" +
              diags.report(),
          diags.diagnostics());
  };

  const auto apply = [&](const char* name,
                         const std::function<IrExprPtr(const IrExprPtr&)>& fn) {
    // Per-pass wall time + IR node in/out counters. Dynamic interning is fine
    // here: passes run once per compile, not per point pair.
    const bool traced = obs::enabled();
    obs::ScopedTimer pass_scope(
        traced ? obs::intern_timer((std::string("pass/") + name).c_str())
               : obs::MetricId(0));
    index_t nodes_before = 0, nodes_after = 0;
    const auto count_program = [&](const IrProgram& p) {
      index_t total = 0;
      const std::function<void(const IrStmtPtr&)> walk = [&](const IrStmtPtr& s) {
        if (!s) return;
        if (s->expr) total += ir_node_count(s->expr);
        for (const IrStmtPtr& child : s->body) walk(child);
      };
      walk(p.base_case);
      walk(p.prune_approx);
      walk(p.compute_approx);
      return total;
    };
    nodes_before = count_program(program);
    program.base_case = ir_stmt_rewrite(program.base_case, fn);
    program.prune_approx = ir_stmt_rewrite(program.prune_approx, fn);
    program.compute_approx = ir_stmt_rewrite(program.compute_approx, fn);
    nodes_after = count_program(program);
    if (traced) {
      const std::string prefix = std::string("pass/") + name;
      obs::counter_add(obs::intern_counter((prefix + "/ir_nodes_in").c_str()),
                       static_cast<std::uint64_t>(nodes_before));
      obs::counter_add(obs::intern_counter((prefix + "/ir_nodes_out").c_str()),
                       static_cast<std::uint64_t>(nodes_after));
    }
    trace += std::string(name) + ": " + std::to_string(nodes_before) + " -> " +
             std::to_string(nodes_after) + " IR nodes\n";
    if (dump_ && artifacts != nullptr)
      artifacts->stages.emplace_back(name, ir_program_to_string(program));
    PORTAL_LOG_DEBUG("pass %s: %lld -> %lld nodes", name,
                     static_cast<long long>(nodes_before),
                     static_cast<long long>(nodes_after));
    verify_stage(name);
  };

  if (dump_ && artifacts != nullptr)
    artifacts->stages.emplace_back("lowering+storage-injection",
                                   ir_program_to_string(program));
  verify_stage("lowering+storage-injection");

  // From here on loads must carry flattening metadata with layout-consistent
  // strides (PTL-E007).
  stage_vc.after_flattening = true;
  stage_vc.check_strides = true;
  apply("flattening", [&](const IrExprPtr& e) {
    return flatten_pass(e, vc.query_layout, vc.query_size, vc.ref_layout,
                        vc.ref_size);
  });
  apply("numerical-optimization", numerical_optimization_pass);
  if (strength_) apply("strength-reduction", strength_reduction_pass);
  apply("constant-folding", constant_fold_pass);

  // Statement-level DCE (Sec. IV-F): the expression passes above can orphan
  // temp assignments (a fully folded condition no longer reads t).
  {
    PORTAL_OBS_SCOPE(dce_scope, "pass/dead-code-elimination");
    program.base_case = dce_pass(program.base_case);
    program.prune_approx = dce_pass(program.prune_approx);
    program.compute_approx = dce_pass(program.compute_approx);
  }
  trace += "dead-code-elimination\n";
  if (dump_ && artifacts != nullptr)
    artifacts->stages.emplace_back("dead-code-elimination",
                                   ir_program_to_string(program));
  verify_stage("dead-code-elimination");

  if (analysis_hook_) {
    PORTAL_OBS_SCOPE(analysis_scope, "pass/analysis");
    analysis_hook_(program, artifacts);
    trace += "analysis\n";
  }

  if (artifacts != nullptr) artifacts->pipeline_trace += trace;
  return program;
}

} // namespace portal
