#include "core/var_expr.h"

#include <atomic>
#include <set>
#include <stdexcept>

namespace portal {
namespace {

std::atomic<int> g_next_var_id{0};

ExprNodePtr make_node(ExprNode node) {
  return std::make_shared<const ExprNode>(std::move(node));
}

ExprNodePtr unary(ExprKind kind, const Expr& child) {
  if (!child.valid()) throw std::invalid_argument("Expr: empty operand");
  ExprNode node;
  node.kind = kind;
  node.children = {child.node()};
  return make_node(std::move(node));
}

ExprNodePtr binary(ExprKind kind, const Expr& a, const Expr& b) {
  if (!a.valid() || !b.valid()) throw std::invalid_argument("Expr: empty operand");
  ExprNode node;
  node.kind = kind;
  node.children = {a.node(), b.node()};
  return make_node(std::move(node));
}

/// Wrap a Vector expression in an implicit DimSum when a Scalar is required
/// (the paper's lowering of sqrt(pow(q - r, 2)) into a dim loop + sqrt).
Expr require_scalar(const Expr& e) {
  if (!e.valid()) throw std::invalid_argument("Expr: empty operand");
  if (e.type() == ExprType::Vector) return dimsum(e);
  return e;
}

} // namespace

Var::Var() : id_(g_next_var_id.fetch_add(1)) {
  name_ = "v" + std::to_string(id_);
}

Var::Var(std::string name) : id_(g_next_var_id.fetch_add(1)), name_(std::move(name)) {}

Expr::Expr(real_t constant) {
  ExprNode node;
  node.kind = ExprKind::Const;
  node.value = constant;
  node_ = make_node(std::move(node));
}

Expr::Expr(int constant) : Expr(static_cast<real_t>(constant)) {}

Expr::Expr(const Var& var) {
  ExprNode node;
  node.kind = ExprKind::VarRef;
  node.var_id = var.id();
  node.label = var.name();
  node_ = make_node(std::move(node));
}

ExprType node_type(const ExprNodePtr& node) {
  switch (node->kind) {
    case ExprKind::Const:
    case ExprKind::DimSum:
    case ExprKind::DimMax:
    case ExprKind::Less:
    case ExprKind::Greater:
    case ExprKind::Mahalanobis:
    case ExprKind::External:
    case ExprKind::Sqrt:
    case ExprKind::Exp:
    case ExprKind::Log:
      return ExprType::Scalar;
    case ExprKind::VarRef:
      return ExprType::Vector;
    case ExprKind::Neg:
    case ExprKind::Abs:
    case ExprKind::Pow:
      return node_type(node->children[0]);
    case ExprKind::Add:
    case ExprKind::Sub:
    case ExprKind::Mul:
    case ExprKind::Div:
    case ExprKind::Min2:
    case ExprKind::Max2: {
      const ExprType a = node_type(node->children[0]);
      const ExprType b = node_type(node->children[1]);
      return (a == ExprType::Vector || b == ExprType::Vector) ? ExprType::Vector
                                                              : ExprType::Scalar;
    }
  }
  return ExprType::Scalar;
}

ExprType Expr::type() const {
  if (!node_) throw std::logic_error("Expr::type on empty expression");
  return node_type(node_);
}

std::string Expr::to_string() const {
  if (!node_) return "<empty>";
  const ExprNode& n = *node_;
  auto child = [&](std::size_t i) { return Expr(n.children[i]).to_string(); };
  switch (n.kind) {
    case ExprKind::Const: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", static_cast<double>(n.value));
      return buf;
    }
    case ExprKind::VarRef:
      return n.label.empty() ? "v" + std::to_string(n.var_id) : n.label;
    case ExprKind::Add: return "(" + child(0) + " + " + child(1) + ")";
    case ExprKind::Sub: return "(" + child(0) + " - " + child(1) + ")";
    case ExprKind::Mul: return "(" + child(0) + " * " + child(1) + ")";
    case ExprKind::Div: return "(" + child(0) + " / " + child(1) + ")";
    case ExprKind::Neg: return "(-" + child(0) + ")";
    case ExprKind::Pow: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", static_cast<double>(n.value));
      return "pow(" + child(0) + ", " + buf + ")";
    }
    case ExprKind::Sqrt: return "sqrt(" + child(0) + ")";
    case ExprKind::Exp: return "exp(" + child(0) + ")";
    case ExprKind::Log: return "log(" + child(0) + ")";
    case ExprKind::Abs: return "abs(" + child(0) + ")";
    case ExprKind::DimSum: return "dimsum(" + child(0) + ")";
    case ExprKind::DimMax: return "dimmax(" + child(0) + ")";
    case ExprKind::Min2: return "min(" + child(0) + ", " + child(1) + ")";
    case ExprKind::Max2: return "max(" + child(0) + ", " + child(1) + ")";
    case ExprKind::Less: return "(" + child(0) + " < " + child(1) + ")";
    case ExprKind::Greater: return "(" + child(0) + " > " + child(1) + ")";
    case ExprKind::Mahalanobis:
      return "mahalanobis(v" + std::to_string(n.var_id) + ", v" +
             std::to_string(n.var_id2) + ")";
    case ExprKind::External:
      return n.label + "(v" + std::to_string(n.var_id) + ", v" +
             std::to_string(n.var_id2) + ")";
  }
  return "?";
}

Expr operator+(const Expr& a, const Expr& b) { return Expr(binary(ExprKind::Add, a, b)); }
Expr operator-(const Expr& a, const Expr& b) { return Expr(binary(ExprKind::Sub, a, b)); }
Expr operator*(const Expr& a, const Expr& b) { return Expr(binary(ExprKind::Mul, a, b)); }
Expr operator/(const Expr& a, const Expr& b) { return Expr(binary(ExprKind::Div, a, b)); }
Expr operator-(const Expr& a) { return Expr(unary(ExprKind::Neg, a)); }

Expr operator<(const Expr& a, const Expr& b) {
  return Expr(binary(ExprKind::Less, Expr(a).type() == ExprType::Vector ? dimsum(a) : a,
                     Expr(b).type() == ExprType::Vector ? dimsum(b) : b));
}

Expr operator>(const Expr& a, const Expr& b) {
  return Expr(binary(ExprKind::Greater,
                     Expr(a).type() == ExprType::Vector ? dimsum(a) : a,
                     Expr(b).type() == ExprType::Vector ? dimsum(b) : b));
}

Expr pow(const Expr& base, real_t exponent) {
  if (!base.valid()) throw std::invalid_argument("pow: empty operand");
  ExprNode node;
  node.kind = ExprKind::Pow;
  node.children = {base.node()};
  node.value = exponent;
  return Expr(make_node(std::move(node)));
}

Expr sqrt(const Expr& e) { return Expr(unary(ExprKind::Sqrt, require_scalar(e))); }
Expr exp(const Expr& e) { return Expr(unary(ExprKind::Exp, require_scalar(e))); }
Expr log(const Expr& e) { return Expr(unary(ExprKind::Log, require_scalar(e))); }
Expr abs(const Expr& e) { return Expr(unary(ExprKind::Abs, e)); }
Expr dimsum(const Expr& e) {
  if (!e.valid()) throw std::invalid_argument("Expr: empty operand");
  if (e.type() == ExprType::Scalar) return e; // already reduced
  return Expr(unary(ExprKind::DimSum, e));
}
Expr dimmax(const Expr& e) {
  if (!e.valid()) throw std::invalid_argument("Expr: empty operand");
  if (e.type() == ExprType::Scalar) return e;
  return Expr(unary(ExprKind::DimMax, e));
}

Expr vmin(const Expr& a, const Expr& b) { return Expr(binary(ExprKind::Min2, a, b)); }
Expr vmax(const Expr& a, const Expr& b) { return Expr(binary(ExprKind::Max2, a, b)); }

Expr mahalanobis(const Var& q, const Var& r, std::vector<real_t> cov) {
  ExprNode node;
  node.kind = ExprKind::Mahalanobis;
  node.var_id = q.id();
  node.var_id2 = r.id();
  node.matrix = std::move(cov);
  return Expr(make_node(std::move(node)));
}

Expr external_kernel(const Var& q, const Var& r, ExternalKernelFn fn,
                     std::string label) {
  ExprNode node;
  node.kind = ExprKind::External;
  node.var_id = q.id();
  node.var_id2 = r.id();
  node.external = std::move(fn);
  node.label = std::move(label);
  return Expr(make_node(std::move(node)));
}

namespace {
void collect_ids(const ExprNodePtr& node, std::set<int>* out) {
  if (node->var_id >= 0) out->insert(node->var_id);
  if (node->var_id2 >= 0) out->insert(node->var_id2);
  for (const ExprNodePtr& child : node->children) collect_ids(child, out);
}
} // namespace

std::vector<int> collect_var_ids(const Expr& e) {
  std::set<int> ids;
  if (e.valid()) collect_ids(e.node(), &ids);
  return {ids.begin(), ids.end()};
}

} // namespace portal
