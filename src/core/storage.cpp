#include "core/storage.h"

#include <stdexcept>

#include "util/csv.h"

namespace portal {
namespace {

[[noreturn]] void not_input() {
  throw std::logic_error("Storage: not an input storage (no dataset)");
}

[[noreturn]] void not_output() {
  throw std::logic_error(
      "Storage: not an output storage (did you call execute()?)");
}

} // namespace

Storage::Storage(const std::string& csv_path) {
  const CsvTable table = read_csv(csv_path);
  if (table.rows == 0)
    throw std::runtime_error("Storage: empty CSV '" + csv_path + "'");
  data_ = std::make_shared<Dataset>(
      Dataset::from_row_major(table.values.data(), table.rows, table.cols));
}

Storage::Storage(const std::vector<std::vector<float>>& input) {
  std::vector<std::vector<real_t>> widened(input.size());
  for (std::size_t i = 0; i < input.size(); ++i)
    widened[i].assign(input[i].begin(), input[i].end());
  data_ = std::make_shared<Dataset>(Dataset::from_points(widened));
}

Storage::Storage(const std::vector<std::vector<real_t>>& input)
    : data_(std::make_shared<Dataset>(Dataset::from_points(input))) {}

Storage::Storage(Dataset data)
    : data_(std::make_shared<Dataset>(std::move(data))) {}

Storage::Storage(std::shared_ptr<OutputData> output) : output_(std::move(output)) {}

index_t Storage::size() const {
  if (!data_) not_input();
  return data_->size();
}

index_t Storage::dim() const {
  if (!data_) not_input();
  return data_->dim();
}

Layout Storage::layout() const {
  if (!data_) not_input();
  return data_->layout();
}

const Dataset& Storage::dataset() const {
  if (!data_) not_input();
  return *data_;
}

index_t Storage::rows() const {
  if (!output_) not_output();
  return output_->rows;
}

index_t Storage::cols() const {
  if (!output_) not_output();
  return output_->cols;
}

real_t Storage::value(index_t row, index_t col) const {
  if (!output_) not_output();
  return output_->values.at(row * output_->cols + col);
}

index_t Storage::index_at(index_t row, index_t col) const {
  if (!output_) not_output();
  return output_->indices.at(row * output_->cols + col);
}

bool Storage::has_indices() const { return output_ && !output_->indices.empty(); }
bool Storage::has_lists() const { return output_ && !output_->offsets.empty(); }
bool Storage::has_scalar() const { return output_ && output_->has_scalar; }

real_t Storage::scalar() const {
  if (!output_ || !output_->has_scalar) not_output();
  return output_->scalar;
}

index_t Storage::list_size(index_t row) const {
  if (!output_ || output_->offsets.empty()) not_output();
  return output_->offsets.at(row + 1) - output_->offsets.at(row);
}

index_t Storage::list_at(index_t row, index_t i) const {
  if (!output_ || output_->offsets.empty()) not_output();
  return output_->lists.at(output_->offsets.at(row) + i);
}

const OutputData& Storage::output() const {
  if (!output_) not_output();
  return *output_;
}

void Storage::set_weights(std::vector<real_t> weights) {
  if (!data_) not_input();
  if (static_cast<index_t>(weights.size()) != data_->size())
    throw std::invalid_argument("Storage::set_weights: size mismatch");
  weights_ = std::make_shared<std::vector<real_t>>(std::move(weights));
}

const std::vector<real_t>& Storage::weights() const {
  if (!weights_) throw std::logic_error("Storage: no weights set");
  return *weights_;
}

void Storage::clear() {
  data_.reset();
  weights_.reset();
  output_.reset();
}

} // namespace portal
