#include "core/analysis.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/codegen/vm.h"
#include "core/verify/diagnostics.h"
#include "core/passes/lowering.h"
#include "kernels/linalg.h"
#include "util/log.h"

namespace portal {
namespace {

[[noreturn]] void bad_program(const char* code, const std::string& message) {
  throw PortalDiagnosticError(
      Diagnostic{Severity::Error, code, "analyze_layers", message});
}

/// Structural indicator recognition over the envelope IR:
/// products/conjunctions of {Dist < c, c < Dist, Dist > c, c > Dist}.
struct Interval {
  real_t lo = -std::numeric_limits<real_t>::infinity();
  real_t hi = std::numeric_limits<real_t>::infinity();
};

bool match_indicator(const IrExprPtr& e, Interval* interval) {
  const auto is_dist = [](const IrExprPtr& n) { return n->op == IrOp::Dist; };
  const auto is_c = [](const IrExprPtr& n) { return n->op == IrOp::Const; };
  switch (e->op) {
    case IrOp::Less: // a < b
      if (is_dist(e->children[0]) && is_c(e->children[1])) {
        interval->hi = std::min(interval->hi, e->children[1]->value);
        return true;
      }
      if (is_c(e->children[0]) && is_dist(e->children[1])) {
        interval->lo = std::max(interval->lo, e->children[0]->value);
        return true;
      }
      return false;
    case IrOp::Greater: // a > b
      if (is_dist(e->children[0]) && is_c(e->children[1])) {
        interval->lo = std::max(interval->lo, e->children[1]->value);
        return true;
      }
      if (is_c(e->children[0]) && is_dist(e->children[1])) {
        interval->hi = std::min(interval->hi, e->children[0]->value);
        return true;
      }
      return false;
    case IrOp::Mul:
    case IrOp::LogicalAnd:
      return match_indicator(e->children[0], interval) &&
             match_indicator(e->children[1], interval);
    default:
      return false;
  }
}

} // namespace

void classify_envelope(KernelInfo* kernel) {
  if (!kernel->normalized) {
    kernel->shape = EnvelopeShape::Opaque;
    return;
  }
  const IrExprPtr& env = kernel->envelope_ir;
  if (env->op == IrOp::Dist) {
    kernel->shape = EnvelopeShape::Identity;
    return;
  }
  Interval interval;
  if (match_indicator(env, &interval)) {
    kernel->shape = EnvelopeShape::Indicator;
    kernel->indicator_lo = interval.lo;
    kernel->indicator_hi = interval.hi;
    return;
  }

  // Monotonicity by dense sampling: log grid spanning any realistic distance
  // magnitude plus a fine linear grid near the origin. The paper *requires*
  // monotone kernels (Sec. II, property 2); sampling verifies it.
  const VmProgram program = VmProgram::compile(env);
  std::vector<real_t> samples;
  samples.push_back(0);
  for (int i = -9; i <= 9; ++i)
    for (real_t m : {1.0, 2.0, 5.0})
      samples.push_back(m * std::pow(10.0, i));
  for (int i = 1; i <= 64; ++i) samples.push_back(real_t(i) * 0.25);
  std::sort(samples.begin(), samples.end());

  bool non_increasing = true;
  bool non_decreasing = true;
  real_t prev = program.run_envelope(samples.front());
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const real_t value = program.run_envelope(samples[i]);
    const real_t tol = 1e-12 * std::max({std::abs(prev), std::abs(value), real_t(1)});
    if (value > prev + tol) non_increasing = false;
    if (value < prev - tol) non_decreasing = false;
    prev = value;
  }
  if (non_increasing && !non_decreasing) {
    kernel->shape = EnvelopeShape::Decreasing;
  } else if (non_decreasing && !non_increasing) {
    kernel->shape = EnvelopeShape::Increasing;
  } else if (non_increasing && non_decreasing) {
    kernel->shape = EnvelopeShape::Decreasing; // constant: zero-width bounds
  } else {
    kernel->shape = EnvelopeShape::Opaque; // non-monotone: no guarantees
    PORTAL_LOG_WARN(
        "kernel envelope is not monotone in distance; pruning/approximation "
        "disabled (paper Sec. II requires monotone kernels)");
  }
}

ProblemPlan analyze_layers(const std::vector<LayerSpec>& layers,
                           const PortalConfig& config) {
  if (layers.size() != 2)
    bad_program("PTL-E101", "expected exactly 2 layers (outer + inner); got " +
                std::to_string(layers.size()) +
                ". Multi-way (m > 2) problems are future work, matching the "
                "paper's evaluated problem set");

  ProblemPlan plan;
  plan.layers = layers;
  const LayerSpec& outer = plan.layers[0];
  const LayerSpec& inner = plan.layers[1];

  // --- layer validation -----------------------------------------------------
  if (!outer.storage.is_input() || !inner.storage.is_input())
    bad_program("PTL-E102", "every layer needs an input Storage");
  if (outer.storage.size() == 0 || inner.storage.size() == 0)
    bad_program("PTL-E103", "empty dataset");
  if (outer.storage.dim() != inner.storage.dim())
    bad_program("PTL-E104", "layer datasets disagree on dimensionality (" +
                std::to_string(outer.storage.dim()) + " vs " +
                std::to_string(inner.storage.dim()) + ")");
  switch (outer.op.op) {
    case PortalOp::FORALL:
    case PortalOp::SUM:
    case PortalOp::PROD:
    case PortalOp::MIN:
    case PortalOp::MAX:
      break;
    default:
      bad_program("PTL-E105", std::string("outer operator ") + op_name(outer.op.op) +
                  " is not supported as the outermost layer");
  }
  if (op_category(inner.op.op) == OpCategory::Multi &&
      inner.op.op != PortalOp::UNION && inner.op.op != PortalOp::UNIONARG) {
    if (inner.op.k < 1 || inner.op.k > inner.storage.size())
      bad_program("PTL-E106", "multi-variable reduction k must be in [1, dataset size]");
  }
  if (outer.has_kernel() && !inner.has_kernel())
    bad_program("PTL-E107", "the kernel function belongs on the innermost layer "
                "(Sec. III-C); outer layers take modifying functions only");
  if (!inner.has_kernel())
    bad_program("PTL-E108", "the innermost layer requires a kernel function");

  // --- kernel construction ---------------------------------------------------
  const bool gravity = inner.func.kind() == PortalFunc::Kind::Gravity;
  if (gravity) {
    if (inner.storage.dim() != 3)
      bad_program("PTL-E109", "the gravity kernel (Barnes-Hut) requires 3-D data");
    if (outer.op.op != PortalOp::FORALL || inner.op.op != PortalOp::SUM)
      bad_program("PTL-E110", "the gravity kernel requires the forall/sum layer pair");
    plan.kernel.is_gravity = true;
    plan.kernel.gravity_g = inner.func.gravity_g();
    plan.kernel.gravity_eps = inner.func.softening();
    plan.category = ProblemCategory::Approximation;
    plan.kernel.shape = EnvelopeShape::Decreasing;
    // Display-only IR: the magnitude kernel of Table III.
    plan.kernel.kernel_ir = ir_binary(
        IrOp::Div, ir_const(plan.kernel.gravity_g),
        ir_binary(IrOp::Add, ir_leaf(IrOp::Dist),
                  ir_const(plan.kernel.gravity_eps * plan.kernel.gravity_eps)));
    plan.kernel.envelope_ir = plan.kernel.kernel_ir;
    plan.kernel.normalized = true;
    plan.kernel.metric = MetricKind::SqEuclidean;
    plan.description = describe_problem(plan);
    return plan;
  }

  // Bind layer variables and build the kernel AST. Pre-defined PortalFuncs
  // synthesize their own q/r Vars; custom kernels reference the Vars the user
  // bound through the code-3-style addLayer overloads.
  if (inner.external != nullptr) {
    // External C++ kernel (Sec. III-C): opaque to every optimization, exactly
    // as the paper notes ("will not be optimized in the same way").
    Var q_tmp("q"), r_tmp("r");
    plan.kernel.ast = external_kernel(q_tmp, r_tmp, inner.external,
                                      inner.external_label.empty()
                                          ? "external"
                                          : inner.external_label);
    plan.layers[0].var_id = q_tmp.id();
    plan.layers[1].var_id = r_tmp.id();
  } else if (inner.custom_kernel.valid()) {
    plan.kernel.ast = inner.custom_kernel;
  } else if (inner.func.kind() == PortalFunc::Kind::Custom) {
    plan.kernel.ast = inner.func.custom_expr();
  } else {
    if (outer.var_id >= 0 || inner.var_id >= 0)
      bad_program("PTL-E111", "pre-defined PortalFuncs bind their own variables; use the "
                  "custom-kernel addLayer overload with explicit Vars");
    Var q_tmp("q"), r_tmp("r");
    plan.kernel.ast = inner.func.expand(q_tmp, r_tmp);
    plan.layers[0].var_id = q_tmp.id();
    plan.layers[1].var_id = r_tmp.id();
  }
  if (plan.layers[0].var_id < 0 || plan.layers[1].var_id < 0)
    bad_program("PTL-E112", "custom kernels require both layers bound to Vars (use the "
                "addLayer overload that takes a Var)");
  const int bound_q = plan.layers[0].var_id;
  const int bound_r = plan.layers[1].var_id;
  if (bound_q == bound_r)
    bad_program("PTL-E113", "outer and inner layers must bind distinct Vars");

  // Validate var usage.
  for (int id : collect_var_ids(plan.kernel.ast))
    if (id != bound_q && id != bound_r)
      bad_program("PTL-E114", "kernel references a Var not bound to any layer");

  // Scalar-ize (implicit dim-sum at the top, Sec. IV-A).
  if (plan.kernel.ast.type() == ExprType::Vector)
    plan.kernel.ast = dimsum(plan.kernel.ast);

  // Resolve Mahalanobis covariance from the reference dataset when needed.
  std::vector<real_t> resolved_cov;
  {
    const std::function<bool(const ExprNodePtr&)> needs_cov =
        [&](const ExprNodePtr& node) {
          if (node->kind == ExprKind::Mahalanobis && node->matrix.empty())
            return true;
          for (const ExprNodePtr& child : node->children)
            if (needs_cov(child)) return true;
          return false;
        };
    if (needs_cov(plan.kernel.ast.node())) {
      const Dataset& ref = inner.storage.dataset();
      resolved_cov = covariance(ref, column_mean(ref));
    }
  }

  // --- lowering + normalization ----------------------------------------------
  plan.kernel.kernel_ir =
      lower_kernel_expr(plan.kernel.ast, bound_q, bound_r, resolved_cov);
  const NormalizedKernel normalized =
      normalize_kernel(plan.kernel.ast, bound_q, bound_r, resolved_cov);
  plan.kernel.normalized = normalized.ok;
  if (normalized.ok) {
    plan.kernel.metric = normalized.metric;
    plan.kernel.envelope_ir = normalized.envelope;
    if (normalized.metric == MetricKind::Mahalanobis) {
      // Find the covariance used (explicit on the node or resolved).
      std::vector<real_t> cov = resolved_cov;
      const std::function<void(const ExprNodePtr&)> find_cov =
          [&](const ExprNodePtr& node) {
            if (node->kind == ExprKind::Mahalanobis && !node->matrix.empty())
              cov = node->matrix;
            for (const ExprNodePtr& child : node->children) find_cov(child);
          };
      find_cov(plan.kernel.ast.node());
      const index_t m = inner.storage.dim();
      plan.kernel.maha = std::make_shared<MahalanobisContext>(cov, m);
    }
  } else if (plan.kernel.ast.node()->kind == ExprKind::External) {
    plan.kernel.external = plan.kernel.ast.node()->external;
  }

  classify_envelope(&plan.kernel);

  // --- classification (Sec. II-B) ---------------------------------------------
  const bool comparative_op = op_is_comparative(inner.op.op);
  const bool comparative_kernel = plan.kernel.shape == EnvelopeShape::Indicator;
  if (!plan.kernel.normalized) {
    plan.category = ProblemCategory::Exhaustive;
  } else if (comparative_op || comparative_kernel) {
    plan.category = ProblemCategory::Pruning;
  } else if ((inner.op.op == PortalOp::SUM || inner.op.op == PortalOp::PROD ||
              inner.op.op == PortalOp::FORALL) &&
             plan.kernel.shape != EnvelopeShape::Opaque) {
    plan.category = ProblemCategory::Approximation;
  } else {
    plan.category = ProblemCategory::Exhaustive;
  }

  // exclude_same_label sanity (the MST constraint).
  if (config.exclude_same_label != nullptr) {
    if (outer.storage.identity() != inner.storage.identity())
      bad_program("PTL-E115", "exclude_same_label requires both layers to share one dataset");
    if (static_cast<index_t>(config.exclude_same_label->size()) !=
        outer.storage.size())
      bad_program("PTL-E116", "exclude_same_label size must match the dataset");
  }

  plan.description = describe_problem(plan);
  return plan;
}

std::string describe_problem(const ProblemPlan& plan) {
  const LayerSpec& outer = plan.layers[0];
  const LayerSpec& inner = plan.layers[1];
  std::string out = op_math_symbol(outer.op) + ", " + op_math_symbol(inner.op);
  out += " | kernel: ";
  if (plan.kernel.is_gravity) {
    out += "G*M_q*M_r / (||x_q - x_r||^2 + eps^2)";
  } else {
    out += plan.kernel.ast.valid() ? plan.kernel.ast.to_string()
                                   : std::string(inner.func.name());
  }
  out += " | class: ";
  out += category_name(plan.category);
  out += " | condition: ";
  switch (plan.category) {
    case ProblemCategory::Pruning:
      if (plan.kernel.shape == EnvelopeShape::Indicator) {
        out += "reject pair if [d_min, d_max] outside kernel support; "
               "bulk-accept if inside";
      } else {
        out += "prune pair if best achievable kernel value cannot beat B(N_q)";
      }
      break;
    case ProblemCategory::Approximation:
      out += "approximate pair if |K(d_min) - K(d_max)| <= tau with center "
             "contribution x node density";
      break;
    case ProblemCategory::Exhaustive:
      out += "none (kernel opaque to the generator)";
      break;
  }
  return out;
}

} // namespace portal
