// Portal -- the operator vocabulary of the language (paper Table I).
//
// Operators fall into three categories that drive storage injection
// (Sec. IV-B) and algorithm classification (Sec. II-B):
//   All:    FORALL                      -> one output slot per dataset point
//   Single: SUM PROD ARGMIN ARGMAX MIN MAX -> one output slot
//   Multi:  KARGMIN KARGMAX KMIN KMAX UNION UNIONARG
//           -> k slots (sorted), or a dynamic list for the UNION pair
#pragma once

#include <limits>
#include <string>

#include "util/common.h"

namespace portal {

enum class PortalOp {
  FORALL,
  SUM,
  PROD,
  MIN,
  MAX,
  ARGMIN,
  ARGMAX,
  KMIN,
  KMAX,
  KARGMIN,
  KARGMAX,
  UNION,
  UNIONARG,
};

enum class OpCategory { All, Single, Multi };

/// An operator instance as it appears in a layer: the Multi reductions carry
/// their k. Implicitly convertible from PortalOp so the paper's
/// `addLayer(PortalOp::FORALL, ...)` spelling works, while
/// `addLayer({PortalOp::KARGMIN, k}, ...)` mirrors code 1's
/// `(PortalOp::KARGMIN, k)`.
struct OpSpec {
  PortalOp op = PortalOp::FORALL;
  index_t k = 1;

  OpSpec(PortalOp o) : op(o) {} // NOLINT(google-explicit-constructor)
  OpSpec(PortalOp o, index_t kk) : op(o), k(kk) {}
};

inline OpCategory op_category(PortalOp op) {
  switch (op) {
    case PortalOp::FORALL:
      return OpCategory::All;
    case PortalOp::SUM:
    case PortalOp::PROD:
    case PortalOp::MIN:
    case PortalOp::MAX:
    case PortalOp::ARGMIN:
    case PortalOp::ARGMAX:
      return OpCategory::Single;
    default:
      return OpCategory::Multi;
  }
}

/// Comparative operators are what turn a problem into a *pruning* problem
/// (Sec. II-B): they discard data, so subtrees that cannot win are skipped.
inline bool op_is_comparative(PortalOp op) {
  switch (op) {
    case PortalOp::MIN:
    case PortalOp::MAX:
    case PortalOp::ARGMIN:
    case PortalOp::ARGMAX:
    case PortalOp::KMIN:
    case PortalOp::KMAX:
    case PortalOp::KARGMIN:
    case PortalOp::KARGMAX:
      return true;
    default:
      return false;
  }
}

/// Min-flavored reductions keep the smallest kernel values.
inline bool op_is_min_like(PortalOp op) {
  return op == PortalOp::MIN || op == PortalOp::ARGMIN || op == PortalOp::KMIN ||
         op == PortalOp::KARGMIN;
}

inline bool op_is_max_like(PortalOp op) {
  return op == PortalOp::MAX || op == PortalOp::ARGMAX || op == PortalOp::KMAX ||
         op == PortalOp::KARGMAX;
}

/// Arg-flavored reductions output indices rather than kernel values.
inline bool op_is_arg(PortalOp op) {
  return op == PortalOp::ARGMIN || op == PortalOp::ARGMAX ||
         op == PortalOp::KARGMIN || op == PortalOp::KARGMAX ||
         op == PortalOp::UNIONARG;
}

/// Decomposability (paper Sec. II, property 1): all Portal operators satisfy
/// it -- the check exists for future operators and documents the requirement.
inline bool op_is_decomposable(PortalOp) { return true; }

/// The identity element the intermediate storage is initialized with
/// (Sec. IV-A: "for the min operator ... DBL_MAX").
inline real_t op_init_value(PortalOp op) {
  switch (op) {
    case PortalOp::SUM:
      return 0;
    case PortalOp::PROD:
      return 1;
    case PortalOp::MIN:
    case PortalOp::ARGMIN:
    case PortalOp::KMIN:
    case PortalOp::KARGMIN:
      return std::numeric_limits<real_t>::max();
    case PortalOp::MAX:
    case PortalOp::ARGMAX:
    case PortalOp::KMAX:
    case PortalOp::KARGMAX:
      return std::numeric_limits<real_t>::lowest();
    default:
      return 0;
  }
}

inline const char* op_name(PortalOp op) {
  switch (op) {
    case PortalOp::FORALL: return "FORALL";
    case PortalOp::SUM: return "SUM";
    case PortalOp::PROD: return "PROD";
    case PortalOp::MIN: return "MIN";
    case PortalOp::MAX: return "MAX";
    case PortalOp::ARGMIN: return "ARGMIN";
    case PortalOp::ARGMAX: return "ARGMAX";
    case PortalOp::KMIN: return "KMIN";
    case PortalOp::KMAX: return "KMAX";
    case PortalOp::KARGMIN: return "KARGMIN";
    case PortalOp::KARGMAX: return "KARGMAX";
    case PortalOp::UNION: return "UNION";
    case PortalOp::UNIONARG: return "UNIONARG";
  }
  return "?";
}

/// Mathematical spelling used in IR dumps and the Table III bench.
inline std::string op_math_symbol(const OpSpec& spec) {
  switch (spec.op) {
    case PortalOp::FORALL: return "forall";
    case PortalOp::SUM: return "sum";
    case PortalOp::PROD: return "prod";
    case PortalOp::MIN: return "min";
    case PortalOp::MAX: return "max";
    case PortalOp::ARGMIN: return "argmin";
    case PortalOp::ARGMAX: return "argmax";
    case PortalOp::KMIN: return "min^" + std::to_string(spec.k);
    case PortalOp::KMAX: return "max^" + std::to_string(spec.k);
    case PortalOp::KARGMIN: return "argmin^" + std::to_string(spec.k);
    case PortalOp::KARGMAX: return "argmax^" + std::to_string(spec.k);
    case PortalOp::UNION: return "union";
    case PortalOp::UNIONARG: return "union-arg";
  }
  return "?";
}

} // namespace portal
