// Portal -- Storage: the primary user-facing data object (paper Sec. III-B).
//
// Inputs are built from CSV files or C++ containers; Portal chooses the
// memory layout by dimensionality (d <= 4 column-major, else row-major).
// Outputs come back as Storage too, with typed views: a value matrix
// (MIN/SUM/...), an index matrix (ARG* reductions), CSR lists (UNION*), or a
// single scalar (fully-reduced problems like 2-point correlation).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/common.h"

namespace portal {

/// Output payload; which views are populated depends on the layer operators.
struct OutputData {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<real_t> values;   // rows x cols kernel values
  std::vector<index_t> indices; // rows x cols reference indices (ARG*)
  std::vector<index_t> offsets; // CSR offsets (UNION*), size rows + 1
  std::vector<index_t> lists;   // CSR payload
  bool has_scalar = false;
  real_t scalar = 0;
};

class Storage {
 public:
  Storage() = default;

  /// Load a dataset from CSV (code 1: `Storage query{"query_file.csv"}`).
  explicit Storage(const std::string& csv_path);

  /// Build from C++ containers (Sec. III-B). float input is widened.
  explicit Storage(const std::vector<std::vector<float>>& input);
  explicit Storage(const std::vector<std::vector<real_t>>& input);

  /// Wrap an existing Dataset (library interop).
  explicit Storage(Dataset data);

  /// Wrap an output payload (built by the executor).
  explicit Storage(std::shared_ptr<OutputData> output);

  bool is_input() const { return data_ != nullptr; }
  bool is_output() const { return output_ != nullptr; }
  bool empty() const { return !is_input() && !is_output(); }

  // -- input views ----------------------------------------------------------
  index_t size() const;
  index_t dim() const;
  Layout layout() const;
  const Dataset& dataset() const;
  /// Shared handle used by tree caches to pin the dataset alive (guards the
  /// identity key against address reuse after a Storage dies).
  std::shared_ptr<const Dataset> shared_dataset() const { return data_; }
  /// Stable identity used to key tree caches and match layers that reuse the
  /// same dataset (the paper: "the same dataset may be reused in multiple
  /// layers").
  const void* identity() const { return data_.get(); }

  /// Optional per-point weights (particle masses for the Barnes-Hut gravity
  /// kernel). Size must match size().
  void set_weights(std::vector<real_t> weights);
  bool has_weights() const { return weights_ != nullptr; }
  const std::vector<real_t>& weights() const;

  // -- output views ---------------------------------------------------------
  index_t rows() const;
  index_t cols() const;
  real_t value(index_t row, index_t col = 0) const;
  index_t index_at(index_t row, index_t col = 0) const;
  bool has_indices() const;
  bool has_lists() const;
  bool has_scalar() const;
  real_t scalar() const;
  index_t list_size(index_t row) const;
  index_t list_at(index_t row, index_t i) const;
  const OutputData& output() const;

  /// Release the payload (paper: `clear()` frees input/output storage).
  void clear();

 private:
  std::shared_ptr<Dataset> data_;
  std::shared_ptr<std::vector<real_t>> weights_;
  std::shared_ptr<OutputData> output_;
};

} // namespace portal
