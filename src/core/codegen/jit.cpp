#include "core/codegen/jit.h"

#include <dlfcn.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/verify/verify.h"
#include "kernels/linalg.h"
#include "kernels/metrics.h"
#include "obs/trace.h"
#include "util/log.h"

namespace portal {
namespace {

std::string compiler_command() {
  const char* cxx = std::getenv("CXX");
  return cxx != nullptr && *cxx != '\0' ? cxx : "c++";
}

/// -ffp-contract=off is part of the bitwise contract: under plain -O3
/// -march=native the compiler would contract a*b+c into FMA, producing
/// differently-rounded sums than the interpreter's separate multiply+add.
constexpr const char* kJitFlags =
    " -O3 -march=native -ffp-contract=off -shared -fPIC";

void emit_literal(std::ostream& os, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  os << buf;
}

/// Names the printer substitutes for the reference-point array and the
/// dimension bound: the pair kernel reads `r`/`dim`, the fused tile loops
/// read the gathered lane `rj` under the unrolled `kDim`.
struct EmitNames {
  const char* r = "r";
  const char* dim = "dim";
};

/// Emit an IR expression as a C++ expression. `q`/`names.r` name the point
/// arrays; dim loops become immediately-invoked lambdas so the whole kernel
/// stays a single expression. Every emitted operation mirrors the VM
/// interpreter op (core/codegen/vm.cpp) bit for bit -- see the prelude for
/// the helper contracts.
void emit_expr(std::ostream& os, const IrExprPtr& e, int* matrix_counter,
               std::ostream& preamble, const EmitNames& names) {
  const auto child = [&](std::size_t i) {
    emit_expr(os, e->children[i], matrix_counter, preamble, names);
  };
  switch (e->op) {
    case IrOp::Const:
      emit_literal(os, static_cast<double>(e->value));
      return;
    case IrOp::LoadQCoord:
      // Flattened form: base + d * stride. The executor hands the JIT
      // dim-contiguous gathered points, so the runtime stride is 1; the
      // flattening metadata is shown in dumps, not re-derived here.
      os << "q[d]";
      return;
    case IrOp::LoadRCoord:
      os << names.r << "[d]";
      return;
    case IrOp::Dist:
      os << "dist";
      return;
    case IrOp::Add: os << "("; child(0); os << " + "; child(1); os << ")"; return;
    case IrOp::Sub: os << "("; child(0); os << " - "; child(1); os << ")"; return;
    case IrOp::Mul: os << "("; child(0); os << " * "; child(1); os << ")"; return;
    case IrOp::Div: os << "("; child(0); os << " / "; child(1); os << ")"; return;
    case IrOp::Neg: os << "(-"; child(0); os << ")"; return;
    case IrOp::Abs: os << "portal_fabs("; child(0); os << ")"; return;
    case IrOp::Min: os << "portal_min("; child(0); os << ", "; child(1); os << ")"; return;
    case IrOp::Max: os << "portal_max("; child(0); os << ", "; child(1); os << ")"; return;
    case IrOp::Pow: {
      // Mirror of the VM's PowConst dispatch: integer exponents in [0, 32]
      // go through the chained-multiplication helper (bitwise-identical to
      // kernels/fastmath.h pow_int), anything else through libm pow.
      const double exponent = static_cast<double>(e->value);
      const double intpart = std::nearbyint(exponent);
      if (exponent == intpart && intpart >= 0 && intpart <= 32) {
        os << "portal_pow_int(";
        child(0);
        os << ", " << static_cast<int>(intpart) << ")";
      } else {
        os << "__builtin_pow(";
        child(0);
        os << ", ";
        emit_literal(os, exponent);
        os << ")";
      }
      return;
    }
    case IrOp::Sqrt: os << "__builtin_sqrt("; child(0); os << ")"; return;
    case IrOp::FastSqrt:
      os << "(1.0 / portal_fast_inv_sqrt(";
      child(0);
      os << "))";
      return;
    case IrOp::InvSqrt:
      os << "(1.0 / __builtin_sqrt(";
      child(0);
      os << "))";
      return;
    case IrOp::FastInvSqrt:
      os << "portal_fast_inv_sqrt(";
      child(0);
      os << ")";
      return;
    case IrOp::Exp: os << "__builtin_exp("; child(0); os << ")"; return;
    case IrOp::Log: os << "__builtin_log("; child(0); os << ")"; return;
    case IrOp::Less:
      os << "((";
      child(0);
      os << " < ";
      child(1);
      os << ") ? 1.0 : 0.0)";
      return;
    case IrOp::Greater:
      os << "((";
      child(0);
      os << " > ";
      child(1);
      os << ") ? 1.0 : 0.0)";
      return;
    case IrOp::LogicalAnd:
      os << "(((";
      child(0);
      os << ") != 0.0 && (";
      child(1);
      os << ") != 0.0) ? 1.0 : 0.0)";
      return;
    case IrOp::DimSum:
    case IrOp::DimMax: {
      const bool is_sum = e->op == IrOp::DimSum;
      os << "[&]{ double acc = "
         << (is_sum ? "0.0" : "-1.7976931348623157e308")
         << "; for (long d = 0; d < " << names.dim
         << "; ++d) { const double body = ";
      child(0);
      os << "; " << (is_sum ? "acc += body;" : "if (body > acc) acc = body;")
         << " } return acc; }()";
      return;
    }
    case IrOp::MahalanobisNaive:
    case IrOp::MahalanobisChol: {
      // Embed the matrix as a static array; the Chol flavor runs forward
      // substitution through the caller-provided scratch (matrix = L), the
      // naive flavor the explicit quadratic form (matrix = Sigma^{-1},
      // inverted here at compile time -- kept for the numerical-optimization
      // ablation).
      const int id = (*matrix_counter)++;
      std::vector<real_t> matrix = e->matrix;
      if (e->op == IrOp::MahalanobisNaive) {
        const index_t m = static_cast<index_t>(
            std::llround(std::sqrt(static_cast<double>(matrix.size()))));
        matrix = spd_inverse(matrix, m);
      }
      const std::size_t m2 = matrix.size();
      preamble << "static const double portal_mat_" << id << "[" << m2 << "] = {";
      for (std::size_t i = 0; i < m2; ++i) {
        emit_literal(preamble, static_cast<double>(matrix[i]));
        preamble << (i + 1 < m2 ? "," : "");
      }
      preamble << "};\n";
      if (e->op == IrOp::MahalanobisChol) {
        os << "portal_maha_chol(q, " << names.r << ", " << names.dim
           << ", portal_mat_" << id << ", scratch)";
      } else {
        os << "portal_maha_naive(q, " << names.r << ", " << names.dim
           << ", portal_mat_" << id << ")";
      }
      return;
    }
    case IrOp::ExternalCall:
      throw std::runtime_error("jit: external kernels are not serializable");
    default:
      throw std::runtime_error("jit: unexpected IR op in kernel expression");
  }
}

// Every helper replicates its runtime counterpart bit for bit: portal_fabs /
// portal_min / portal_max are std::fabs / std::min / std::max, the
// fast-inverse-sqrt is kernels/fastmath.h including the NaN / negative /
// denormal / infinity edge cases, portal_pow_int is pow_int's
// square-and-multiply, and the Mahalanobis helpers follow kernels/linalg.cpp
// operation for operation. This is what makes JIT output comparable to the
// VM at tolerance 0 in the differential fuzz walls.
const char* kPrelude = R"(// Generated by the Portal compiler backend. Do not edit.
#include <cstdint>
#include <cstring>

static inline double portal_fabs(double x) { return __builtin_fabs(x); }
static inline double portal_min(double a, double b) { return b < a ? b : a; }
static inline double portal_max(double a, double b) { return a < b ? b : a; }

static inline double portal_fast_inv_sqrt(double x) {
  if (x != x) return x; // NaN propagates
  if (x < 0.0) return __builtin_nan("");
  if (x < 2.2250738585072014e-308) return __builtin_inf(); // 0 and denormals
  if (x == __builtin_inf()) return 0.0;
  double half = 0.5 * x;
  std::uint64_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  bits = 0x5FE6EB50C7B537A9ULL - (bits >> 1);
  double y;
  std::memcpy(&y, &bits, sizeof(y));
  y = y * (1.5 - half * y * y); // one Newton step
  return y;
}

static inline double portal_pow_int(double x, int n) {
  switch (n) {
    case 0: return 1.0;
    case 1: return x;
    case 2: return x * x;
    case 3: return x * x * x;
    default: {
      const bool negative = n < 0;
      unsigned int e = negative ? 0u - static_cast<unsigned int>(n)
                                : static_cast<unsigned int>(n);
      double result = 1.0;
      double base = x;
      while (e > 0) {
        if (e & 1u) result *= base;
        base *= base;
        e >>= 1;
      }
      return negative ? 1.0 / result : result;
    }
  }
}

static inline double portal_maha_chol(const double* q, const double* r, long dim,
                                      const double* L, double* scratch) {
  double* diff = scratch;
  double* solved = scratch + dim;
  for (long i = 0; i < dim; ++i) diff[i] = q[i] - r[i];
  for (long i = 0; i < dim; ++i) {
    double sum = diff[i];
    for (long k = 0; k < i; ++k) sum -= L[i * dim + k] * solved[k];
    solved[i] = sum / L[i * dim + i];
  }
  double total = 0;
  for (long i = 0; i < dim; ++i) total += solved[i] * solved[i];
  return total;
}

static inline double portal_maha_naive(const double* q, const double* r, long dim,
                                       const double* inv) {
  double total = 0;
  for (long i = 0; i < dim; ++i) {
    double row = 0;
    for (long j = 0; j < dim; ++j) row += inv[i * dim + j] * (q[j] - r[j]);
    total += (q[i] - r[i]) * row;
  }
  return total;
}
)";

/// The compile-time dimension the fused loops unroll against: every plan
/// binds its layers to concrete datasets, so the first input layer's dim is
/// authoritative. 0 (no input layer -- hand-built shells) falls back to the
/// runtime `dim` argument.
index_t plan_dim(const ProblemPlan& plan) {
  for (const LayerSpec& layer : plan.layers)
    if (layer.storage.is_input()) return layer.storage.dim();
  return 0;
}

void emit_dim_decl(std::ostream& os, index_t kdim) {
  if (kdim > 0) {
    os << "  constexpr long kDim = " << kdim << ";\n  (void)dim;\n";
  } else {
    os << "  const long kDim = dim;\n";
  }
}

constexpr const char* kFusedSignature =
    "(const double* q, const double* rlanes,\n"
    "                  long rstride, long rbegin, long count, long dim,\n"
    "                  double* scratch, double* out)";

/// portal_fused_batch: the opaque-kernel tile loop. Gathers each SoA lane
/// into dim-contiguous scratch and evaluates the full kernel expression --
/// the same per-lane operation sequence as VmProgram::run_batch, minus the
/// interpreter.
void emit_fused_batch(std::ostream& body, const ProblemPlan& plan,
                      index_t kdim, int* matrix_counter,
                      std::ostream& preamble) {
  body << "extern \"C\" void portal_fused_batch" << kFusedSignature << " {\n";
  emit_dim_decl(body, kdim);
  body << "  const double* rl = rlanes + rbegin;\n"
          "  double* rj = scratch + 2 * kDim;\n"
          "  for (long j = 0; j < count; ++j) {\n"
          "    for (long d = 0; d < kDim; ++d) rj[d] = rl[d * rstride + j];\n"
          "    out[j] = ";
  EmitNames names;
  names.r = "rj";
  names.dim = "kDim";
  emit_expr(body, plan.kernel.kernel_ir, matrix_counter, preamble, names);
  body << ";\n  }\n}\n\n";
}

/// portal_fused_values: the normalized-plan tile loop. Natural-space metric
/// distances dimension-outer / lane-inner (the exact loop shape and per-lane
/// operation order of batch::natural_dists) with the envelope applied in
/// place -- kernel, prune condition (indicator envelopes emit as branchless
/// compares), and accumulation fused into one pass over the tile.
void emit_fused_values(std::ostream& body, const ProblemPlan& plan,
                       index_t kdim, int* matrix_counter,
                       std::ostream& preamble) {
  body << "extern \"C\" void portal_fused_values" << kFusedSignature << " {\n";
  emit_dim_decl(body, kdim);
  body << "  (void)scratch;\n"
          "  const double* rl = rlanes + rbegin;\n";
  const MetricKind metric = plan.kernel.metric;
  if (metric == MetricKind::Mahalanobis) {
    const std::vector<real_t>& chol = plan.kernel.maha->chol();
    const int id = (*matrix_counter)++;
    preamble << "static const double portal_mat_" << id << "["
             << chol.size() << "] = {";
    for (std::size_t i = 0; i < chol.size(); ++i) {
      emit_literal(preamble, static_cast<double>(chol[i]));
      preamble << (i + 1 < chol.size() ? "," : "");
    }
    preamble << "};\n";
    body << "  double* rj = scratch + 2 * kDim;\n"
            "  for (long j = 0; j < count; ++j) {\n"
            "    for (long d = 0; d < kDim; ++d) rj[d] = rl[d * rstride + j];\n"
            "    out[j] = portal_maha_chol(q, rj, kDim, portal_mat_" << id
         << ", scratch);\n"
            "  }\n";
  } else {
    const char* accumulate = nullptr;
    switch (metric) {
      case MetricKind::SqEuclidean:
      case MetricKind::Euclidean:
        accumulate = "      const double diff = slice[j] - qd;\n"
                     "      out[j] += diff * diff;\n";
        break;
      case MetricKind::Manhattan:
        accumulate = "      out[j] += portal_fabs(slice[j] - qd);\n";
        break;
      case MetricKind::Chebyshev:
        accumulate =
            "      out[j] = portal_max(out[j], portal_fabs(slice[j] - qd));\n";
        break;
      case MetricKind::Mahalanobis:
        break; // handled above
    }
    body << "  for (long j = 0; j < count; ++j) out[j] = 0.0;\n"
            "  for (long d = 0; d < kDim; ++d) {\n"
            "    const double* slice = rl + d * rstride;\n"
            "    const double qd = q[d];\n"
            "    for (long j = 0; j < count; ++j) {\n"
         << accumulate
         << "    }\n  }\n";
    if (metric == MetricKind::Euclidean)
      body << "  for (long j = 0; j < count; ++j) out[j] = "
              "__builtin_sqrt(out[j]);\n";
  }
  body << "  for (long j = 0; j < count; ++j) {\n"
          "    const double dist = out[j];\n"
          "    out[j] = ";
  EmitNames names;
  emit_expr(body, plan.kernel.envelope_ir, matrix_counter, preamble, names);
  body << ";\n  }\n}\n";
}

} // namespace

std::string emit_cpp_source(const ProblemPlan& plan) {
  if (plan.kernel.kernel_ir && ir_contains(plan.kernel.kernel_ir, IrOp::ExternalCall))
    throw std::runtime_error("jit: external kernels are not serializable");
  // Verified-IR precondition: the printer indexes children by arity and
  // would emit garbage C++ from malformed trees.
  verify_executable_expr(plan.kernel.kernel_ir, "jit");
  if (plan.kernel.normalized && plan.kernel.envelope_ir)
    verify_executable_expr(plan.kernel.envelope_ir, "jit-envelope");

  std::ostringstream preamble;
  std::ostringstream body;
  int matrix_counter = 0;
  const EmitNames pair_names;

  body << "extern \"C\" double portal_kernel(const double* q, const double* r, "
          "long dim, double* scratch) {\n  (void)scratch; (void)dim;\n  return ";
  emit_expr(body, plan.kernel.kernel_ir, &matrix_counter, preamble, pair_names);
  body << ";\n}\n\n";

  const bool have_envelope = plan.kernel.normalized && plan.kernel.envelope_ir;
  if (have_envelope) {
    body << "extern \"C\" double portal_envelope(double dist) {\n  return ";
    emit_expr(body, plan.kernel.envelope_ir, &matrix_counter, preamble,
              pair_names);
    body << ";\n}\n\n";
  }

  const index_t kdim = plan_dim(plan);
  emit_fused_batch(body, plan, kdim, &matrix_counter, preamble);
  if (have_envelope &&
      (plan.kernel.metric != MetricKind::Mahalanobis || plan.kernel.maha))
    emit_fused_values(body, plan, kdim, &matrix_counter, preamble);

  std::string source = kPrelude;
  source += preamble.str();
  source += "\n";
  source += body.str();
  return source;
}

bool jit_available() {
  static const bool available = [] {
    const std::string cmd =
        compiler_command() + " --version > /dev/null 2>&1";
    return std::system(cmd.c_str()) == 0;
  }();
  return available;
}

const std::string& jit_compiler_identity() {
  static const std::string identity = [] {
    std::string id = compiler_command() + kJitFlags;
    const std::string cmd = compiler_command() + " --version 2>/dev/null";
    if (FILE* pipe = popen(cmd.c_str(), "r")) {
      char line[256];
      if (std::fgets(line, sizeof(line), pipe) != nullptr) {
        std::string version(line);
        while (!version.empty() &&
               (version.back() == '\n' || version.back() == '\r'))
          version.pop_back();
        id += " | " + version;
      }
      pclose(pipe);
    }
    return id;
  }();
  return identity;
}

const std::string& jit_scratch_dir() {
  // One mkdtemp directory per process: concurrent processes can never
  // collide on intermediate file names, and the janitor removes the (by
  // then empty) directory at exit.
  static const struct Scratch {
    std::string dir;
    Scratch() {
      const char* tmp = std::getenv("TMPDIR");
      std::string tpl =
          std::string(tmp != nullptr && *tmp != '\0' ? tmp : "/tmp") +
          "/portal_jit_XXXXXX";
      std::vector<char> buf(tpl.begin(), tpl.end());
      buf.push_back('\0');
      if (mkdtemp(buf.data()) == nullptr)
        throw std::runtime_error("jit: cannot create scratch directory from " +
                                 tpl);
      dir.assign(buf.data());
    }
    ~Scratch() {
      if (!dir.empty()) rmdir(dir.c_str());
    }
  } scratch;
  return scratch.dir;
}

std::unique_ptr<JitModule> JitModule::compile(const ProblemPlan& plan) {
  return compile(plan, ArtifactCache::process_cache());
}

std::unique_ptr<JitModule> JitModule::compile(const ProblemPlan& plan,
                                              ArtifactCache* cache) {
  if (plan.kernel.kernel_ir &&
      ir_contains(plan.kernel.kernel_ir, IrOp::ExternalCall))
    return nullptr;
  if (plan.kernel.is_gravity) return nullptr; // pattern-backend shape

  PORTAL_OBS_SCOPE(compile_scope, "jit/compile");
  auto module = std::unique_ptr<JitModule>(new JitModule());
  module->source_ = emit_cpp_source(plan);
  const std::uint64_t source_hash = fnv1a_bytes(module->source_);
  const std::uint64_t key =
      artifact_cache_key(plan.fingerprint, source_hash, jit_compiler_identity(),
                         kJitEmitterVersion);

  if (cache != nullptr) {
    const std::string cached = cache->lookup(key, source_hash);
    if (!cached.empty()) {
      if (module->open(cached, /*owned=*/false)) {
        module->from_cache_ = true;
        PORTAL_LOG_INFO("jit: warm-started module from %s", cached.c_str());
        return module;
      }
      // Hash-validated yet undlopenable (foreign-architecture debris):
      // treated exactly like any other bad entry -- rejected, recompiled.
      PORTAL_OBS_COUNT("jit/artifact/rejects", 1);
      PORTAL_LOG_WARN("jit: cached artifact failed to load, recompiling: %s",
                      cached.c_str());
    }
  }

  static std::atomic<int> counter{0};
  const std::string base =
      jit_scratch_dir() + "/m" + std::to_string(counter.fetch_add(1));
  const std::string cpp_path = base + ".cpp";
  const std::string so_path = base + ".so";
  const std::string log_path = base + ".log";

  {
    std::ofstream out(cpp_path);
    if (!out) throw std::runtime_error("jit: cannot write " + cpp_path);
    out << module->source_;
  }

  const std::string cmd = compiler_command() + kJitFlags + " -o " + so_path +
                          " " + cpp_path + " > " + log_path + " 2>&1";
  PORTAL_OBS_COUNT("jit/artifact/compiles", 1);
  if (std::system(cmd.c_str()) != 0) {
    std::ifstream log(log_path);
    std::stringstream message;
    message << "jit: compilation failed:\n" << log.rdbuf();
    std::remove(cpp_path.c_str());
    std::remove(log_path.c_str());
    std::remove(so_path.c_str()); // partial output, if any
    throw std::runtime_error(message.str());
  }
  std::remove(cpp_path.c_str());
  std::remove(log_path.c_str());

  if (!module->open(so_path, /*owned=*/true)) {
    const char* err = dlerror();
    std::remove(so_path.c_str());
    throw std::runtime_error(std::string("jit: dlopen failed: ") +
                             (err != nullptr ? err : "unknown error"));
  }
  PORTAL_OBS_COUNT("jit/modules_compiled", 1);
  PORTAL_LOG_INFO("jit: compiled kernel module %s", so_path.c_str());

  if (cache != nullptr)
    cache->publish(key, source_hash, jit_compiler_identity(), so_path);
  return module;
}

bool JitModule::open(const std::string& so_path, bool owned) {
  void* handle = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) return false;
  KernelFn kernel = reinterpret_cast<KernelFn>(dlsym(handle, "portal_kernel"));
  if (kernel == nullptr) {
    dlclose(handle);
    return false;
  }
  handle_ = handle;
  so_path_ = so_path;
  owned_so_ = owned;
  kernel_ = kernel;
  envelope_ = reinterpret_cast<EnvelopeFn>(dlsym(handle, "portal_envelope"));
  fused_batch_ =
      reinterpret_cast<BatchFn>(dlsym(handle, "portal_fused_batch"));
  fused_values_ =
      reinterpret_cast<BatchFn>(dlsym(handle, "portal_fused_values"));
  return true;
}

JitModule::~JitModule() {
  if (handle_ != nullptr) dlclose(handle_);
  if (owned_so_ && !so_path_.empty()) std::remove(so_path_.c_str());
}

EvaluatorFns JitModule::evaluators() const {
  EvaluatorFns fns;
  const KernelFn kernel = kernel_;
  fns.kernel_pair = [kernel](const real_t* q, const real_t* r, index_t dim,
                             real_t* scratch) {
    PORTAL_OBS_COUNT("jit/kernel_evals", 1);
    return kernel(q, r, static_cast<long>(dim), scratch);
  };
  if (envelope_ != nullptr) {
    const EnvelopeFn envelope = envelope_;
    fns.envelope = [envelope](real_t d) { return envelope(d); };
  }
  if (fused_batch_ != nullptr) {
    const BatchFn fused = fused_batch_;
    fns.kernel_batch = [fused](const real_t* q, const real_t* rlanes,
                               index_t rstride, index_t rbegin, index_t count,
                               index_t dim, real_t* scratch, real_t* out) {
      PORTAL_OBS_COUNT("jit/batch_evals", 1);
      fused(q, rlanes, static_cast<long>(rstride), static_cast<long>(rbegin),
            static_cast<long>(count), static_cast<long>(dim), scratch, out);
    };
  }
  if (fused_values_ != nullptr) {
    const BatchFn fused = fused_values_;
    fns.leaf_values = [fused](const real_t* q, const real_t* rlanes,
                              index_t rstride, index_t rbegin, index_t count,
                              index_t dim, real_t* scratch, real_t* out) {
      PORTAL_OBS_COUNT("jit/leaf_tiles", 1);
      fused(q, rlanes, static_cast<long>(rstride), static_cast<long>(rbegin),
            static_cast<long>(count), static_cast<long>(dim), scratch, out);
    };
  }
  return fns;
}

} // namespace portal
