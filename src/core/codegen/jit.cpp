#include "core/codegen/jit.h"

#include <dlfcn.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/verify/verify.h"
#include "kernels/linalg.h"
#include "obs/trace.h"
#include "util/log.h"

namespace portal {
namespace {

std::string compiler_command() {
  const char* cxx = std::getenv("CXX");
  return cxx != nullptr && *cxx != '\0' ? cxx : "c++";
}

/// Emit an IR expression as a C++ expression. `q`/`r` name the point arrays;
/// dim loops become immediately-invoked lambdas so the whole kernel stays a
/// single expression.
void emit_expr(std::ostream& os, const IrExprPtr& e, int* matrix_counter,
               std::ostream& preamble) {
  const auto child = [&](std::size_t i) {
    emit_expr(os, e->children[i], matrix_counter, preamble);
  };
  switch (e->op) {
    case IrOp::Const: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", static_cast<double>(e->value));
      os << buf;
      return;
    }
    case IrOp::LoadQCoord:
      // Flattened form: base + d * stride. The executor hands the JIT
      // dim-contiguous gathered points, so the runtime stride is 1; the
      // flattening metadata is shown in dumps, not re-derived here.
      os << "q[d]";
      return;
    case IrOp::LoadRCoord:
      os << "r[d]";
      return;
    case IrOp::Dist:
      os << "dist";
      return;
    case IrOp::Add: os << "("; child(0); os << " + "; child(1); os << ")"; return;
    case IrOp::Sub: os << "("; child(0); os << " - "; child(1); os << ")"; return;
    case IrOp::Mul: os << "("; child(0); os << " * "; child(1); os << ")"; return;
    case IrOp::Div: os << "("; child(0); os << " / "; child(1); os << ")"; return;
    case IrOp::Neg: os << "(-"; child(0); os << ")"; return;
    case IrOp::Abs: os << "portal_fabs("; child(0); os << ")"; return;
    case IrOp::Min: os << "portal_min("; child(0); os << ", "; child(1); os << ")"; return;
    case IrOp::Max: os << "portal_max("; child(0); os << ", "; child(1); os << ")"; return;
    case IrOp::Pow:
      os << "__builtin_pow(";
      child(0);
      os << ", " << e->value << ")";
      return;
    case IrOp::Sqrt: os << "__builtin_sqrt("; child(0); os << ")"; return;
    case IrOp::FastSqrt:
      os << "(1.0 / portal_fast_inv_sqrt(";
      child(0);
      os << "))";
      return;
    case IrOp::InvSqrt:
      os << "(1.0 / __builtin_sqrt(";
      child(0);
      os << "))";
      return;
    case IrOp::FastInvSqrt:
      os << "portal_fast_inv_sqrt(";
      child(0);
      os << ")";
      return;
    case IrOp::Exp: os << "__builtin_exp("; child(0); os << ")"; return;
    case IrOp::Log: os << "__builtin_log("; child(0); os << ")"; return;
    case IrOp::Less:
      os << "((";
      child(0);
      os << " < ";
      child(1);
      os << ") ? 1.0 : 0.0)";
      return;
    case IrOp::Greater:
      os << "((";
      child(0);
      os << " > ";
      child(1);
      os << ") ? 1.0 : 0.0)";
      return;
    case IrOp::LogicalAnd:
      os << "(((";
      child(0);
      os << ") != 0.0 && (";
      child(1);
      os << ") != 0.0) ? 1.0 : 0.0)";
      return;
    case IrOp::DimSum:
    case IrOp::DimMax: {
      const bool is_sum = e->op == IrOp::DimSum;
      os << "[&]{ double acc = "
         << (is_sum ? "0.0" : "-1.7976931348623157e308")
         << "; for (long d = 0; d < dim; ++d) { const double body = ";
      child(0);
      os << "; " << (is_sum ? "acc += body;" : "if (body > acc) acc = body;")
         << " } return acc; }()";
      return;
    }
    case IrOp::MahalanobisNaive:
    case IrOp::MahalanobisChol: {
      // Embed the matrix as a static array; the Chol flavor runs forward
      // substitution through the caller-provided scratch (matrix = L), the
      // naive flavor the explicit quadratic form (matrix = Sigma^{-1},
      // inverted here at compile time -- kept for the numerical-optimization
      // ablation).
      const int id = (*matrix_counter)++;
      std::vector<real_t> matrix = e->matrix;
      if (e->op == IrOp::MahalanobisNaive) {
        const index_t m = static_cast<index_t>(
            std::llround(std::sqrt(static_cast<double>(matrix.size()))));
        matrix = spd_inverse(matrix, m);
      }
      const std::size_t m2 = matrix.size();
      preamble << "static const double portal_mat_" << id << "[" << m2 << "] = {";
      for (std::size_t i = 0; i < m2; ++i) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", static_cast<double>(matrix[i]));
        preamble << buf << (i + 1 < m2 ? "," : "");
      }
      preamble << "};\n";
      if (e->op == IrOp::MahalanobisChol) {
        os << "portal_maha_chol(q, r, dim, portal_mat_" << id << ", scratch)";
      } else {
        os << "portal_maha_naive(q, r, dim, portal_mat_" << id << ")";
      }
      return;
    }
    case IrOp::ExternalCall:
      throw std::runtime_error("jit: external kernels are not serializable");
    default:
      throw std::runtime_error("jit: unexpected IR op in kernel expression");
  }
}

const char* kPrelude = R"(// Generated by the Portal compiler backend. Do not edit.
#include <cstdint>
#include <cstring>

static inline double portal_fabs(double x) { return x < 0 ? -x : x; }
static inline double portal_min(double a, double b) { return a < b ? a : b; }
static inline double portal_max(double a, double b) { return a > b ? a : b; }

static inline double portal_fast_inv_sqrt(double x) {
  if (x == 0.0) return __builtin_inf();
  double half = 0.5 * x;
  std::uint64_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  bits = 0x5FE6EB50C7B537A9ULL - (bits >> 1);
  double y;
  std::memcpy(&y, &bits, sizeof(y));
  y = y * (1.5 - half * y * y);
  return y;
}

static inline double portal_maha_chol(const double* q, const double* r, long dim,
                                      const double* L, double* scratch) {
  double* diff = scratch;
  double* solved = scratch + dim;
  for (long i = 0; i < dim; ++i) diff[i] = q[i] - r[i];
  for (long i = 0; i < dim; ++i) {
    double sum = diff[i];
    for (long k = 0; k < i; ++k) sum -= L[i * dim + k] * solved[k];
    solved[i] = sum / L[i * dim + i];
  }
  double total = 0;
  for (long i = 0; i < dim; ++i) total += solved[i] * solved[i];
  return total;
}

static inline double portal_maha_naive(const double* q, const double* r, long dim,
                                       const double* inv) {
  double total = 0;
  for (long i = 0; i < dim; ++i) {
    double row = 0;
    for (long j = 0; j < dim; ++j) row += inv[i * dim + j] * (q[j] - r[j]);
    total += (q[i] - r[i]) * row;
  }
  return total;
}
)";

} // namespace

std::string emit_cpp_source(const ProblemPlan& plan) {
  if (plan.kernel.kernel_ir && ir_contains(plan.kernel.kernel_ir, IrOp::ExternalCall))
    throw std::runtime_error("jit: external kernels are not serializable");
  // Verified-IR precondition: the printer indexes children by arity and
  // would emit garbage C++ from malformed trees.
  verify_executable_expr(plan.kernel.kernel_ir, "jit");
  if (plan.kernel.normalized && plan.kernel.envelope_ir)
    verify_executable_expr(plan.kernel.envelope_ir, "jit-envelope");

  std::ostringstream preamble;
  std::ostringstream body;
  int matrix_counter = 0;

  body << "extern \"C\" double portal_kernel(const double* q, const double* r, "
          "long dim, double* scratch) {\n  (void)scratch; (void)dim;\n  return ";
  emit_expr(body, plan.kernel.kernel_ir, &matrix_counter, preamble);
  body << ";\n}\n\n";

  if (plan.kernel.normalized && plan.kernel.envelope_ir) {
    body << "extern \"C\" double portal_envelope(double dist) {\n  return ";
    emit_expr(body, plan.kernel.envelope_ir, &matrix_counter, preamble);
    body << ";\n}\n";
  }

  std::string source = kPrelude;
  source += preamble.str();
  source += "\n";
  source += body.str();
  return source;
}

bool jit_available() {
  static const bool available = [] {
    const std::string cmd =
        compiler_command() + " --version > /dev/null 2>&1";
    return std::system(cmd.c_str()) == 0;
  }();
  return available;
}

std::unique_ptr<JitModule> JitModule::compile(const ProblemPlan& plan) {
  if (plan.kernel.kernel_ir &&
      ir_contains(plan.kernel.kernel_ir, IrOp::ExternalCall))
    return nullptr;
  if (plan.kernel.is_gravity) return nullptr; // pattern-backend shape

  PORTAL_OBS_SCOPE(compile_scope, "jit/compile");
  static std::atomic<int> counter{0};
  const int id = counter.fetch_add(1);
  const std::string base =
      "/tmp/portal_jit_" + std::to_string(getpid()) + "_" + std::to_string(id);
  const std::string cpp_path = base + ".cpp";
  const std::string so_path = base + ".so";
  const std::string log_path = base + ".log";

  auto module = std::unique_ptr<JitModule>(new JitModule());
  module->source_ = emit_cpp_source(plan);

  {
    std::ofstream out(cpp_path);
    if (!out) throw std::runtime_error("jit: cannot write " + cpp_path);
    out << module->source_;
  }

  const std::string cmd = compiler_command() + " -O3 -march=native -shared -fPIC -o " +
                          so_path + " " + cpp_path + " > " + log_path + " 2>&1";
  if (std::system(cmd.c_str()) != 0) {
    std::ifstream log(log_path);
    std::stringstream message;
    message << "jit: compilation failed:\n" << log.rdbuf();
    std::remove(cpp_path.c_str());
    std::remove(log_path.c_str());
    throw std::runtime_error(message.str());
  }

  module->handle_ = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (module->handle_ == nullptr)
    throw std::runtime_error(std::string("jit: dlopen failed: ") + dlerror());
  module->so_path_ = so_path;
  module->kernel_ =
      reinterpret_cast<KernelFn>(dlsym(module->handle_, "portal_kernel"));
  module->envelope_ =
      reinterpret_cast<EnvelopeFn>(dlsym(module->handle_, "portal_envelope"));
  if (module->kernel_ == nullptr)
    throw std::runtime_error("jit: portal_kernel symbol missing");

  std::remove(cpp_path.c_str());
  std::remove(log_path.c_str());
  PORTAL_OBS_COUNT("jit/modules_compiled", 1);
  PORTAL_LOG_INFO("jit: compiled kernel module %s", so_path.c_str());
  return module;
}

JitModule::~JitModule() {
  if (handle_ != nullptr) dlclose(handle_);
  if (!so_path_.empty()) std::remove(so_path_.c_str());
}

EvaluatorFns JitModule::evaluators() const {
  EvaluatorFns fns;
  const KernelFn kernel = kernel_;
  fns.kernel_pair = [kernel](const real_t* q, const real_t* r, index_t dim,
                             real_t* scratch) {
    PORTAL_OBS_COUNT("jit/kernel_evals", 1);
    return kernel(q, r, static_cast<long>(dim), scratch);
  };
  if (envelope_ != nullptr) {
    const EnvelopeFn envelope = envelope_;
    fns.envelope = [envelope](real_t d) { return envelope(d); };
  }
  return fns;
}

} // namespace portal
