// Portal -- bytecode VM backend (DESIGN.md Sec. 4, engine 1).
//
// Compiles a Portal IR expression into a compact postfix bytecode evaluated
// on a small value stack. One program serves three uses:
//   * full kernel per point pair (LoadQCoord/LoadRCoord inside dim loops),
//   * envelope on a metric distance (the Dist atom),
//   * prune/approx conditions on node-pair atoms (DMin/DMax/CenterDist/...).
// The VM is the always-available engine and the correctness oracle for the
// pattern and JIT backends; it is also what the analysis step uses to sample
// envelope monotonicity.
#pragma once

#include <memory>
#include <vector>

#include "core/ir/ir.h"
#include "kernels/metrics.h"
#include "util/common.h"

namespace portal {

/// Inputs a program may read. Unused fields can stay default.
struct VmContext {
  const real_t* q = nullptr; // dim-contiguous query point
  const real_t* r = nullptr; // dim-contiguous reference point
  index_t dim = 0;
  real_t dist = 0;    // Dist atom
  real_t dmin = 0;    // node-pair atoms
  real_t dmax = 0;
  real_t center = 0;
  real_t rcount = 0;
  real_t tau = 0;
  real_t bound = 0;
  real_t* scratch = nullptr; // 2*dim reals; required for Mahalanobis opcodes
};

class VmProgram {
 public:
  VmProgram() = default;

  /// Compile an IR expression. Throws std::invalid_argument on constructs the
  /// VM cannot express (none currently) or malformed trees.
  static VmProgram compile(const IrExprPtr& expr);

  bool empty() const { return code_.empty(); }
  std::size_t size() const { return code_.size(); }

  /// Evaluate; thread-safe (all mutable state lives on the caller's stack).
  real_t run(const VmContext& ctx) const;

  /// Convenience wrappers.
  real_t run_pair(const real_t* q, const real_t* r, index_t dim,
                  real_t* scratch = nullptr) const {
    VmContext ctx;
    ctx.q = q;
    ctx.r = r;
    ctx.dim = dim;
    ctx.scratch = scratch;
    return run(ctx);
  }

  real_t run_envelope(real_t dist) const {
    VmContext ctx;
    ctx.dist = dist;
    return run(ctx);
  }

  /// Inputs for the batched flavor: one query point against `count`
  /// reference lanes from a SoA mirror (tree/soa_mirror.h); lane j's d-th
  /// coordinate is rlanes[d * rstride + rbegin + j]. Node-pair atoms (Dist,
  /// DMin, ...) read as 0, exactly like run_pair's defaulted VmContext.
  struct BatchContext {
    const real_t* q = nullptr;
    const real_t* rlanes = nullptr;
    index_t rstride = 0;
    index_t rbegin = 0;
    index_t count = 0;
    index_t dim = 0;
    real_t* scratch = nullptr; // 3*dim reals (Mahalanobis/External gather)
  };

  /// Evaluate one opcode stream across a whole lane array: the value stack
  /// is structure-of-arrays (each slot a lane vector), so every opcode is a
  /// `#pragma omp simd` sweep over the tile. Per lane this executes the same
  /// operations in the same order as run_pair, so out[j] is bit-for-bit
  /// run_pair(q, r_j). Thread-safe like run().
  void run_batch(const BatchContext& ctx, real_t* out) const;

 private:
  enum class Op : std::uint8_t {
    PushConst,
    LoadQCoord, // q[d] of the active dim loop
    LoadRCoord,
    Dist,
    DMin,
    DMax,
    CenterDist,
    RCount,
    Tau,
    Bound,
    Add,
    Sub,
    Mul,
    Div,
    Neg,
    Abs,
    Min,
    Max,
    PowConst,
    Sqrt,
    FastSqrt,
    InvSqrt,
    FastInvSqrt,
    Exp,
    Log,
    Less,
    Greater,
    And,
    BeginDimSum, // arg = ip of the matching EndDim
    BeginDimMax,
    EndDim,      // arg = ip of the loop body start
    Maha,        // arg = index into maha_ctxs_
    External,    // arg = index into externals_
  };

  struct Instr {
    Op op;
    real_t value = 0;
    int arg = 0;
  };

  void emit(const IrExprPtr& expr);

  /// Mahalanobis payloads: the Chol flavor (post numerical-optimization pass)
  /// carries the L factor; the naive flavor carries Sigma^{-1} (inverted at
  /// compile time from the node's covariance).
  struct MahaEntry {
    std::vector<real_t> matrix; // L (chol) or Sigma^{-1} (naive)
    index_t m = 0;
    bool use_chol = true;
  };

  std::vector<Instr> code_;
  std::vector<MahaEntry> mahas_;
  std::vector<ExternalKernelFn> externals_;
};

} // namespace portal
