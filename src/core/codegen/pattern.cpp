#include "core/codegen/pattern.h"

#include <cmath>
#include <limits>

#include "core/verify/verify.h"
#include "obs/trace.h"
#include "problems/barneshut.h"
#include "problems/kde.h"
#include "problems/knn.h"
#include "problems/range_search.h"
#include "problems/twopoint.h"
#include "tree/octree.h"
#include "util/timer.h"

namespace portal {
namespace {

bool is_min_family(PortalOp op) {
  return op == PortalOp::ARGMIN || op == PortalOp::KARGMIN ||
         op == PortalOp::MIN || op == PortalOp::KMIN;
}

/// exp(c * Dist) with c < 0 over squared Euclidean distance: the Gaussian
/// kernel; returns sigma or 0 when unmatched.
real_t match_gaussian_sigma(const KernelInfo& kernel) {
  if (!kernel.normalized || kernel.metric != MetricKind::SqEuclidean) return 0;
  const IrExprPtr& env = kernel.envelope_ir;
  if (!env || env->op != IrOp::Exp) return 0;
  const IrExprPtr& mul = env->children[0];
  if (mul->op != IrOp::Mul) return 0;
  const IrExprPtr& a = mul->children[0];
  const IrExprPtr& b = mul->children[1];
  real_t c = 0;
  if (a->op == IrOp::Const && b->op == IrOp::Dist) c = a->value;
  else if (b->op == IrOp::Const && a->op == IrOp::Dist) c = b->value;
  else return 0;
  if (c >= 0) return 0;
  return std::sqrt(real_t(-1) / (2 * c));
}

std::shared_ptr<OutputData> from_scalar(real_t value) {
  auto out = std::make_shared<OutputData>();
  out->rows = 1;
  out->cols = 1;
  out->values = {value};
  out->has_scalar = true;
  out->scalar = value;
  return out;
}

} // namespace

std::string recognize_pattern(const ProblemPlan& plan, const PortalConfig& config) {
  if (config.exclude_same_label != nullptr) return {}; // generic engine only
  const OpSpec outer = plan.layers[0].op;
  const OpSpec inner = plan.layers[1].op;
  const KernelInfo& kernel = plan.kernel;

  if (kernel.is_gravity) return "barnes-hut";
  if (!kernel.normalized) return {};

  const bool euclid_family = kernel.metric == MetricKind::Euclidean ||
                             kernel.metric == MetricKind::SqEuclidean;
  // Envelope classification consulted by recognition: analysis-gated plans
  // answer from the proven KernelFacts, facts-free plans from the legacy
  // shape match. The facts are defined to coincide with the shape
  // comparisons, so recognition is bitwise unchanged (gating fuzz wall).
  const bool use_facts = plan.analysis_gated && plan.facts.computed;
  const bool identity_env = use_facts
                                ? plan.facts.envelope_identity
                                : kernel.shape == EnvelopeShape::Identity;
  const bool indicator_env = use_facts
                                 ? plan.facts.envelope_indicator
                                 : kernel.shape == EnvelopeShape::Indicator;

  if (outer.op == PortalOp::FORALL && is_min_family(inner.op) &&
      identity_env && kernel.metric != MetricKind::Mahalanobis)
    return "knn";

  if (outer.op == PortalOp::FORALL && inner.op == PortalOp::UNIONARG &&
      indicator_env && euclid_family && kernel.indicator_lo >= 0 &&
      kernel.indicator_hi < std::numeric_limits<real_t>::infinity())
    return "range-search";

  if (outer.op == PortalOp::FORALL && inner.op == PortalOp::SUM &&
      match_gaussian_sigma(kernel) > 0)
    return "kde";

  if (outer.op == PortalOp::SUM && inner.op == PortalOp::SUM &&
      indicator_env && euclid_family &&
      kernel.indicator_lo == -std::numeric_limits<real_t>::infinity() &&
      kernel.indicator_hi < std::numeric_limits<real_t>::infinity() &&
      plan.layers[0].storage.identity() == plan.layers[1].storage.identity())
    return "two-point";

  if (outer.op == PortalOp::MAX && inner.op == PortalOp::MIN &&
      identity_env && kernel.metric == MetricKind::Euclidean)
    return "hausdorff";

  return {};
}

PatternDispatch try_pattern_execute(const ProblemPlan& plan,
                                    const PortalConfig& config, TreeCache* cache) {
  PatternDispatch dispatch;
  dispatch.name = recognize_pattern(plan, config);
  if (dispatch.name.empty()) return dispatch;
  dispatch.recognized = true;
  PORTAL_OBS_COUNT("pattern/dispatches", 1);
  if (obs::enabled()) obs::instant_event("pattern/" + dispatch.name);
  PORTAL_OBS_SCOPE(pattern_scope, "pattern/execute");
  // Light verified-IR precondition: recognition matched on the kernel IR, so
  // it must at least be structurally sound before a specialized kernel runs.
  if (plan.kernel.kernel_ir)
    verify_executable_expr(plan.kernel.kernel_ir, "pattern");

  const Storage& qstore = plan.layers[0].storage;
  const Storage& rstore = plan.layers[1].storage;
  const KernelInfo& kernel = plan.kernel;
  ExecutionResult& res = dispatch.result;
  Timer timer;

  if (dispatch.name == "knn" || dispatch.name == "hausdorff") {
    auto qtree = cache->get(qstore, config.leaf_size);
    auto rtree = qstore.identity() == rstore.identity()
                     ? qtree
                     : cache->get(rstore, config.leaf_size);
    res.tree_seconds = timer.elapsed_s();
    timer.reset();

    KnnOptions options;
    options.k = dispatch.name == "hausdorff" ? 1 : plan.layers[1].op.k;
    options.leaf_size = config.leaf_size;
    options.parallel = config.parallel;
    options.task_depth = config.task_depth;
    options.metric = kernel.metric;
    options.batch = config.batch_base_cases;
    const KnnResult knn = knn_dualtree_permuted(*qtree, *rtree, options);
    res.stats = knn.stats;
    res.traversal_seconds = timer.elapsed_s();

    if (dispatch.name == "hausdorff") {
      real_t best = 0;
      for (real_t d : knn.distances) best = std::max(best, d);
      res.output = from_scalar(best);
      return dispatch;
    }

    const index_t nq = qstore.size();
    const index_t k = options.k;
    auto out = std::make_shared<OutputData>();
    out->rows = nq;
    out->cols = k;
    out->values.assign(static_cast<std::size_t>(nq) * k, 0);
    const bool arg = op_is_arg(plan.layers[1].op.op);
    if (arg) out->indices.assign(static_cast<std::size_t>(nq) * k, -1);
    for (index_t i = 0; i < nq; ++i) {
      const index_t original = qtree->perm()[i];
      for (index_t j = 0; j < k; ++j) {
        out->values[original * k + j] = knn.distances[i * k + j];
        if (arg) {
          const index_t id = knn.indices[i * k + j];
          out->indices[original * k + j] = id >= 0 ? rtree->perm()[id] : -1;
        }
      }
    }
    res.output = std::move(out);
    return dispatch;
  }

  if (dispatch.name == "kde") {
    auto qtree = cache->get(qstore, config.leaf_size);
    auto rtree = qstore.identity() == rstore.identity()
                     ? qtree
                     : cache->get(rstore, config.leaf_size);
    res.tree_seconds = timer.elapsed_s();
    timer.reset();

    KdeOptions options;
    options.sigma = match_gaussian_sigma(kernel);
    options.tau = config.tau;
    options.leaf_size = config.leaf_size;
    options.normalize = false; // Portal semantics: the raw kernel sum
    options.parallel = config.parallel;
    options.task_depth = config.task_depth;
    options.batch = config.batch_base_cases;
    const KdeResult kde = kde_dualtree_permuted(*qtree, *rtree, options);
    res.stats = kde.stats;
    res.traversal_seconds = timer.elapsed_s();

    auto out = std::make_shared<OutputData>();
    out->rows = qstore.size();
    out->cols = 1;
    out->values.assign(qstore.size(), 0);
    for (index_t i = 0; i < qstore.size(); ++i)
      out->values[qtree->perm()[i]] = kde.densities[i];
    res.output = std::move(out);
    return dispatch;
  }

  if (dispatch.name == "range-search") {
    // The expert implementation owns tree construction (its result maps back
    // to original indexing internally).
    RangeSearchOptions options;
    const bool squared = kernel.metric == MetricKind::SqEuclidean;
    options.h_lo = squared ? std::sqrt(std::max(kernel.indicator_lo, real_t(0)))
                           : std::max(kernel.indicator_lo, real_t(0));
    options.h_hi = squared ? std::sqrt(kernel.indicator_hi) : kernel.indicator_hi;
    options.leaf_size = config.leaf_size;
    options.parallel = config.parallel;
    options.task_depth = config.task_depth;
    options.batch = config.batch_base_cases;
    const RangeSearchResult rs =
        range_search_expert(qstore.dataset(), rstore.dataset(), options);
    res.stats = rs.stats;
    res.traversal_seconds = timer.elapsed_s();

    auto out = std::make_shared<OutputData>();
    out->rows = qstore.size();
    out->offsets = rs.offsets;
    out->lists = rs.neighbors;
    res.output = std::move(out);
    return dispatch;
  }

  if (dispatch.name == "two-point") {
    TwoPointOptions options;
    const bool squared = kernel.metric == MetricKind::SqEuclidean;
    options.h = squared ? std::sqrt(kernel.indicator_hi) : kernel.indicator_hi;
    options.leaf_size = config.leaf_size;
    options.parallel = config.parallel;
    options.task_depth = config.task_depth;
    options.batch = config.batch_base_cases;
    const TwoPointResult tp = twopoint_expert(qstore.dataset(), options);
    res.stats = tp.stats;
    res.traversal_seconds = timer.elapsed_s();

    // Portal's sum-sum counts ordered pairs including i = j; the specialized
    // kernel counts unordered distinct pairs: convert.
    const real_t n = static_cast<real_t>(qstore.size());
    res.output = from_scalar(2 * static_cast<real_t>(tp.pairs) + n);
    return dispatch;
  }

  // barnes-hut
  {
    std::vector<real_t> masses =
        qstore.has_weights() ? qstore.weights()
                             : std::vector<real_t>(qstore.size(), 1);
    BarnesHutOptions options;
    options.theta = config.theta;
    options.G = kernel.gravity_g;
    options.softening = kernel.gravity_eps;
    options.leaf_size = static_cast<index_t>(std::min<index_t>(config.leaf_size, 16));
    options.parallel = config.parallel;
    options.task_depth = config.task_depth;
    // The specialized kernel is already host-compiler-optimized; the fast
    // reciprocal-sqrt accuracy knob is exercised by the ablation bench, not
    // silently through the pattern path.
    options.fast_rsqrt = false;

    const Octree tree(qstore.dataset(), masses, options.leaf_size);
    res.tree_seconds = timer.elapsed_s();
    timer.reset();
    const BarnesHutResult bh = bh_dualtree_permuted(tree, options);
    res.stats = bh.stats;
    res.traversal_seconds = timer.elapsed_s();

    auto out = std::make_shared<OutputData>();
    out->rows = qstore.size();
    out->cols = 3;
    out->values.assign(static_cast<std::size_t>(qstore.size()) * 3, 0);
    for (index_t i = 0; i < qstore.size(); ++i)
      for (int d = 0; d < 3; ++d)
        out->values[tree.perm()[i] * 3 + d] = bh.accel[3 * i + d];
    res.output = std::move(out);
    return dispatch;
  }
}

} // namespace portal
