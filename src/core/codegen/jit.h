// Portal -- the source JIT backend (DESIGN.md Sec. 4, engine 3).
//
// The paper's backend hands optimized IR to LLVM for native code emission;
// LLVM is not available offline here, so this backend performs the honest
// equivalent: it pretty-prints the optimized IR as a C++ translation unit,
// invokes the system compiler (-O3 -march=native -shared -fPIC), dlopens the
// resulting shared object, and hands raw function pointers to the generic
// executor. Kernels containing opaque external C++ callbacks cannot be
// serialized and report unavailable (callers fall back to the VM).
#pragma once

#include <memory>
#include <string>

#include "core/executor.h"
#include "core/plan.h"

namespace portal {

/// A compiled kernel module (RAII over the dlopen handle and temp files).
class JitModule {
 public:
  ~JitModule();
  JitModule(const JitModule&) = delete;
  JitModule& operator=(const JitModule&) = delete;

  /// Compile the plan's kernel + envelope. Throws std::runtime_error with the
  /// compiler log on failure; returns nullptr when the kernel is not
  /// JIT-able (external callbacks).
  static std::unique_ptr<JitModule> compile(const ProblemPlan& plan);

  /// Evaluator callbacks bound to the dlopen'd symbols.
  EvaluatorFns evaluators() const;

  /// The generated translation unit (artifact dumps / tests).
  const std::string& source() const { return source_; }

 private:
  JitModule() = default;

  void* handle_ = nullptr;
  std::string so_path_;
  std::string source_;
  using EnvelopeFn = double (*)(double);
  using KernelFn = double (*)(const double*, const double*, long, double*);
  EnvelopeFn envelope_ = nullptr;
  KernelFn kernel_ = nullptr;
};

/// Emit the C++ translation unit for a plan (exposed for tests and the
/// pipeline bench; JitModule::compile uses it internally).
std::string emit_cpp_source(const ProblemPlan& plan);

/// True when a working system compiler was found (cached probe).
bool jit_available();

} // namespace portal
