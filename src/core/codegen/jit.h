// Portal -- the source JIT backend (DESIGN.md Sec. 4, engine 3; Sec. 17 for
// the artifact cache and the fused leaf loops).
//
// The paper's backend hands optimized IR to LLVM for native code emission;
// LLVM is not available offline here, so this backend performs the honest
// equivalent: it pretty-prints the optimized IR as a C++ translation unit,
// invokes the system compiler (-O3 -march=native -ffp-contract=off -shared
// -fPIC), dlopens the resulting shared object, and hands raw function
// pointers to the generic executor. Kernels containing opaque external C++
// callbacks cannot be serialized and report unavailable (callers fall back
// to the VM).
//
// Two properties the test walls pin:
//   * Bitwise parity with the VM: the emitted operations mirror the
//     interpreter op for op (portal_pow_int == pow_int, the prelude
//     fast-inverse-sqrt replicates kernels/fastmath.h including its edge
//     cases, -ffp-contract=off forbids FMA contraction), so JIT results are
//     bit-identical to the VM at tolerance 0, not merely close.
//   * Zero-compile warm starts: compile() consults an ArtifactCache (the
//     on-disk third level of the plan-cache identity) before invoking the
//     compiler, and publishes what it builds.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/codegen/artifact_cache.h"
#include "core/executor.h"
#include "core/plan.h"

namespace portal {

/// Bumped whenever emit_cpp_source changes the shape of the emitted code;
/// part of the artifact-cache key, so stale on-disk artifacts from an older
/// emitter can never satisfy a lookup.
inline constexpr std::uint64_t kJitEmitterVersion = 2;

/// A compiled kernel module (RAII over the dlopen handle; scratch files it
/// owns are removed on destruction, cache-published artifacts are not).
class JitModule {
 public:
  using EnvelopeFn = double (*)(double);
  using KernelFn = double (*)(const double*, const double*, long, double*);
  /// Fused leaf-loop entry over one SoA tile: lane j's d-th coordinate is
  /// rlanes[d * rstride + rbegin + j]; writes out[0..count). Scratch must
  /// hold 3*dim reals (per-lane gather + Mahalanobis solve).
  using BatchFn = void (*)(const double* q, const double* rlanes, long rstride,
                           long rbegin, long count, long dim, double* scratch,
                           double* out);

  ~JitModule();
  JitModule(const JitModule&) = delete;
  JitModule& operator=(const JitModule&) = delete;

  /// Compile the plan's kernel + envelope + fused leaf loops, warm-starting
  /// from the process artifact cache (PORTAL_JIT_CACHE_DIR) when one is
  /// configured. Throws std::runtime_error with the compiler log on failure;
  /// returns nullptr when the kernel is not JIT-able (external callbacks,
  /// vector-valued gravity).
  static std::unique_ptr<JitModule> compile(const ProblemPlan& plan);

  /// Same, against an explicit cache (nullptr = no cache). Misses compile
  /// and publish; corrupted or stale entries are rejected by the cache and
  /// recompiled, never dlopen'd.
  static std::unique_ptr<JitModule> compile(const ProblemPlan& plan,
                                            ArtifactCache* cache);

  /// Evaluator callbacks bound to the dlopen'd symbols (kernel_pair,
  /// envelope, and the fused kernel_batch / leaf_values tile loops when the
  /// plan admitted them).
  EvaluatorFns evaluators() const;

  /// The generated translation unit (artifact dumps / tests).
  const std::string& source() const { return source_; }

  /// True when this module was dlopen'd from a cache artifact instead of a
  /// fresh compile (warm-start assertions).
  bool from_cache() const { return from_cache_; }

  // Raw symbol access for the serve engine's per-query hot path (no
  // std::function indirection). Null when the plan did not admit the entry.
  KernelFn kernel_fn() const { return kernel_; }
  EnvelopeFn envelope_fn() const { return envelope_; }
  /// Fused tile loop mirroring VmProgram::run_batch (opaque kernel per
  /// lane); bitwise-identical per lane.
  BatchFn fused_batch_fn() const { return fused_batch_; }
  /// Fused tile loop for normalized plans: metric distance + envelope in one
  /// specialized, dimension-unrolled pass (batch::natural_dists followed by
  /// the envelope, bitwise).
  BatchFn fused_values_fn() const { return fused_values_; }

 private:
  JitModule() = default;
  bool open(const std::string& so_path, bool owned);

  void* handle_ = nullptr;
  std::string so_path_;
  bool owned_so_ = false;
  bool from_cache_ = false;
  std::string source_;
  EnvelopeFn envelope_ = nullptr;
  KernelFn kernel_ = nullptr;
  BatchFn fused_batch_ = nullptr;
  BatchFn fused_values_ = nullptr;
};

/// Emit the C++ translation unit for a plan (exposed for tests and the
/// pipeline bench; JitModule::compile uses it internally).
std::string emit_cpp_source(const ProblemPlan& plan);

/// True when a working system compiler was found (cached probe).
bool jit_available();

/// Identity of the toolchain the JIT invokes: command + flags + the first
/// line of `$CXX --version`. Folded into the artifact-cache key so a
/// compiler upgrade (or a CXX= switch) invalidates every cached artifact.
const std::string& jit_compiler_identity();

/// The per-process scratch directory all JIT compiles write into (created
/// lazily via mkdtemp; intermediate files are removed after each compile and
/// module destruction, so the directory is empty whenever no module is
/// alive).
const std::string& jit_scratch_dir();

} // namespace portal
