// Portal -- the cross-process compiled-plan artifact cache (DESIGN.md
// Sec. 17).
//
// The serve PlanCache deduplicates compiles at two levels (descriptor key,
// canonical post-pass IR fingerprint), but both live inside one process: a
// restarted server pays the full g++ latency for every distinct chain again.
// ArtifactCache adds the third, on-disk level: the JIT publishes each
// compiled `.so` under a key derived from the IR fingerprint, the emitted
// source hash, the compiler identity, and the emitter version, and later
// processes dlopen the artifact instead of invoking the compiler at all
// (warm start with zero compiles).
//
// Trust model: the cache directory is plain files, so nothing in it is
// believed without verification. Every artifact carries a manifest sidecar
// recording the key, the source hash, and the byte length + FNV-1a hash of
// the `.so`; lookup() re-hashes the `.so` and rejects on any mismatch
// (truncated file, torn publish, stale manifest, wrong compiler). A rejected
// entry is removed and reported as `jit/artifact/rejects` -- it is never
// dlopen'd. Publishing is write-to-temp + rename-into-place (atomic on
// POSIX), so concurrent publishers of the same key converge on one valid
// artifact and readers only ever see complete files.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace portal {

/// FNV-1a over a byte string (the manifest's `.so` digest and the compiler
/// identity mix; exposed for tests).
std::uint64_t fnv1a_bytes(std::string_view bytes);

/// The on-disk cache key. Mixes every input that can change the machine
/// code: the canonical post-pass IR fingerprint (core/ir/ir_hash.h), the
/// hash of the emitted C++ source (covers hand-built plans whose fingerprint
/// is 0, and any emitter change the version bump missed), the compiler
/// identity string (binary + flags + --version line), and the emitter
/// version (bumped whenever emit_cpp_source changes shape).
std::uint64_t artifact_cache_key(std::uint64_t ir_fingerprint,
                                 std::uint64_t source_hash,
                                 std::string_view compiler_identity,
                                 std::uint64_t emitter_version);

class ArtifactCache {
 public:
  struct Options {
    std::string dir;
    /// Entries beyond this bound are evicted oldest-manifest-first on
    /// publish. 0 = unbounded.
    std::size_t max_entries = 256;
  };

  /// Per-handle outcome counters (the process-wide view is the
  /// jit/artifact/* obs counters; these serve tests and the CLI, which run
  /// with obs off).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t rejects = 0;
    std::uint64_t publishes = 0;
    std::uint64_t evictions = 0;
  };

  /// One validated (or rejected) entry, as the CLI inspect subcommand
  /// reports it.
  struct EntryInfo {
    std::string key_hex;
    std::uint64_t source_hash = 0;
    std::uint64_t so_bytes = 0;
    std::string compiler;
    bool valid = false;
  };

  /// Creates the directory if missing. Throws std::runtime_error when the
  /// path exists but is not a directory or cannot be created.
  explicit ArtifactCache(Options options);

  const std::string& dir() const { return options_.dir; }

  /// Path to a fully validated `.so` for `key`, or "" on miss/reject.
  /// Invalid entries are unlinked so the follow-up publish starts clean.
  std::string lookup(std::uint64_t key, std::uint64_t expected_source_hash);

  /// Publish a freshly compiled `.so` (copied from `so_file`, which the
  /// caller keeps owning) under `key`. Returns the final artifact path, or
  /// "" when publishing failed (cache dir vanished, disk full) -- the caller
  /// then just keeps running off its own copy.
  std::string publish(std::uint64_t key, std::uint64_t source_hash,
                      std::string_view compiler_identity,
                      const std::string& so_file);

  /// Remove every artifact + manifest; returns the number of entries
  /// removed.
  std::size_t purge();

  /// Validated directory listing (CLI inspect; also re-used by eviction).
  std::vector<EntryInfo> list() const;

  std::size_t size() const;
  Stats stats() const;

  /// The process-wide cache configured by PORTAL_JIT_CACHE_DIR (read once);
  /// nullptr when the variable is unset/empty or the directory cannot be
  /// created. JitModule::compile(plan) consults this by default.
  static ArtifactCache* process_cache();

 private:
  std::string so_path(std::uint64_t key) const;
  std::string manifest_path(std::uint64_t key) const;
  void evict_over_bound_locked();

  Options options_;
  mutable std::mutex mutex_;
  Stats stats_;
};

} // namespace portal
