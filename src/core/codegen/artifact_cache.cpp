#include "core/codegen/artifact_cache.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/ir/ir_hash.h"
#include "obs/trace.h"
#include "util/log.h"

namespace fs = std::filesystem;

namespace portal {
namespace {

constexpr const char* kManifestMagic = "portal-jit-artifact v1";

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Whole-file read; empty optional on any I/O failure (a vanished or
/// unreadable entry is a reject, not an error).
bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) return false;
  *out = buf.str();
  return true;
}

/// Parsed manifest sidecar. `compiler` is free text (informational; the
/// compiler identity is already folded into the key).
struct Manifest {
  std::uint64_t key = 0;
  std::uint64_t source_hash = 0;
  std::uint64_t so_bytes = 0;
  std::uint64_t so_hash = 0;
  std::string compiler;
};

bool parse_manifest(const std::string& text, Manifest* m) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kManifestMagic) return false;
  bool have_key = false, have_src = false, have_bytes = false, have_hash = false;
  while (std::getline(in, line)) {
    // The manifest is machine-written: any line that is not a known
    // `field value` pair means the file was tampered with or torn, and the
    // whole entry is rejected.
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) return false;
    const std::string field = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    char* end = nullptr;
    if (field == "key") {
      m->key = std::strtoull(value.c_str(), &end, 16);
      have_key = end != nullptr && *end == '\0';
    } else if (field == "source_hash") {
      m->source_hash = std::strtoull(value.c_str(), &end, 16);
      have_src = end != nullptr && *end == '\0';
    } else if (field == "so_bytes") {
      m->so_bytes = std::strtoull(value.c_str(), &end, 10);
      have_bytes = end != nullptr && *end == '\0';
    } else if (field == "so_hash") {
      m->so_hash = std::strtoull(value.c_str(), &end, 16);
      have_hash = end != nullptr && *end == '\0';
    } else if (field == "compiler") {
      m->compiler = value;
    } else {
      return false; // unknown field: not something this emitter wrote
    }
  }
  return have_key && have_src && have_bytes && have_hash;
}

std::string render_manifest(std::uint64_t key, std::uint64_t source_hash,
                            std::string_view compiler,
                            const std::string& so_bytes) {
  std::ostringstream out;
  out << kManifestMagic << "\n"
      << "key " << hex64(key) << "\n"
      << "source_hash " << hex64(source_hash) << "\n"
      << "so_bytes " << so_bytes.size() << "\n"
      << "so_hash " << hex64(fnv1a_bytes(so_bytes)) << "\n"
      << "compiler " << compiler << "\n";
  return out.str();
}

/// Write-to-temp + rename. The temp name carries pid + a process counter so
/// concurrent publishers never collide on the staging file; rename() is
/// atomic, so readers see the old entry or the new one, never a torn file.
bool atomic_write(const fs::path& final_path, const std::string& bytes) {
  static std::atomic<unsigned> counter{0};
  const fs::path tmp =
      final_path.parent_path() /
      (".tmp." + std::to_string(getpid()) + "." +
       std::to_string(counter.fetch_add(1)) + final_path.filename().string());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out.good()) {
      out.close();
      std::error_code ec;
      fs::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, final_path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

bool is_entry_so(const fs::path& p) {
  const std::string name = p.filename().string();
  return name.size() == 20 && name.rfind("k", 0) == 0 &&
         name.compare(name.size() - 3, 3, ".so") == 0;
}

} // namespace

std::uint64_t fnv1a_bytes(std::string_view bytes) {
  std::uint64_t h = kIrHashSeed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t artifact_cache_key(std::uint64_t ir_fingerprint,
                                 std::uint64_t source_hash,
                                 std::string_view compiler_identity,
                                 std::uint64_t emitter_version) {
  std::uint64_t h = kIrHashSeed;
  h = ir_hash_mix(h, 0x4a415254ull); // 'JART' domain tag
  h = ir_hash_mix(h, ir_fingerprint);
  h = ir_hash_mix(h, source_hash);
  h = ir_hash_mix(h, fnv1a_bytes(compiler_identity));
  h = ir_hash_mix(h, emitter_version);
  return h;
}

ArtifactCache::ArtifactCache(Options options) : options_(std::move(options)) {
  if (options_.dir.empty())
    throw std::runtime_error("artifact cache: empty directory path");
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (!fs::is_directory(options_.dir))
    throw std::runtime_error("artifact cache: cannot create directory " +
                             options_.dir);
}

std::string ArtifactCache::so_path(std::uint64_t key) const {
  return (fs::path(options_.dir) / ("k" + hex64(key) + ".so")).string();
}

std::string ArtifactCache::manifest_path(std::uint64_t key) const {
  return (fs::path(options_.dir) / ("k" + hex64(key) + ".manifest")).string();
}

std::string ArtifactCache::lookup(std::uint64_t key,
                                  std::uint64_t expected_source_hash) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string so = so_path(key);
  const std::string manifest = manifest_path(key);

  std::error_code ec;
  const bool so_exists = fs::exists(so, ec);
  const bool manifest_exists = fs::exists(manifest, ec);
  if (!so_exists && !manifest_exists) {
    ++stats_.misses;
    PORTAL_OBS_COUNT("jit/artifact/misses", 1);
    return "";
  }

  // Something is there: either a valid entry or debris (torn publish,
  // truncation, a manifest for a different compile that hashed to the same
  // name). Validate everything before trusting it.
  const auto reject = [&](const char* why) {
    ++stats_.rejects;
    PORTAL_OBS_COUNT("jit/artifact/rejects", 1);
    PORTAL_LOG_WARN("artifact cache: rejecting entry k%s (%s)",
                    hex64(key).c_str(), why);
    std::error_code rec;
    fs::remove(so, rec);
    fs::remove(manifest, rec);
    return std::string();
  };

  std::string manifest_text;
  Manifest m;
  if (!manifest_exists || !read_file(manifest, &manifest_text) ||
      !parse_manifest(manifest_text, &m))
    return reject("missing or malformed manifest");
  if (m.key != key) return reject("manifest key mismatch");
  if (m.source_hash != expected_source_hash)
    return reject("stale source hash");
  std::string so_bytes;
  if (!so_exists || !read_file(so, &so_bytes))
    return reject("missing or unreadable .so");
  if (so_bytes.size() != m.so_bytes || fnv1a_bytes(so_bytes) != m.so_hash)
    return reject("corrupted .so (size/hash mismatch)");

  ++stats_.hits;
  PORTAL_OBS_COUNT("jit/artifact/hits", 1);
  return so;
}

std::string ArtifactCache::publish(std::uint64_t key, std::uint64_t source_hash,
                                   std::string_view compiler_identity,
                                   const std::string& so_file) {
  std::string so_bytes;
  if (!read_file(so_file, &so_bytes)) return "";

  std::lock_guard<std::mutex> lock(mutex_);
  const std::string so = so_path(key);
  // The .so lands first, the manifest second: a reader that races the gap
  // sees a manifest/.so hash mismatch and rejects, never a torn dlopen.
  if (!atomic_write(so, so_bytes)) return "";
  if (!atomic_write(manifest_path(key),
                    render_manifest(key, source_hash, compiler_identity,
                                    so_bytes))) {
    std::error_code ec;
    fs::remove(so, ec);
    return "";
  }
  ++stats_.publishes;
  evict_over_bound_locked();
  return so;
}

void ArtifactCache::evict_over_bound_locked() {
  if (options_.max_entries == 0) return;
  struct Aged {
    fs::path so;
    fs::file_time_type mtime;
  };
  std::vector<Aged> entries;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(options_.dir, ec)) {
    if (!is_entry_so(e.path())) continue;
    std::error_code mec;
    const auto mtime = fs::last_write_time(e.path(), mec);
    if (!mec) entries.push_back({e.path(), mtime});
  }
  if (entries.size() <= options_.max_entries) return;
  std::sort(entries.begin(), entries.end(),
            [](const Aged& a, const Aged& b) { return a.mtime < b.mtime; });
  const std::size_t excess = entries.size() - options_.max_entries;
  for (std::size_t i = 0; i < excess; ++i) {
    std::error_code rec;
    fs::remove(entries[i].so, rec);
    fs::path manifest = entries[i].so;
    manifest.replace_extension(".manifest");
    fs::remove(manifest, rec);
    ++stats_.evictions;
    PORTAL_OBS_COUNT("jit/artifact/evictions", 1);
  }
}

std::size_t ArtifactCache::purge() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t removed = 0;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(options_.dir, ec)) {
    if (!is_entry_so(e.path())) continue;
    std::error_code rec;
    fs::remove(e.path(), rec);
    fs::path manifest = e.path();
    manifest.replace_extension(".manifest");
    fs::remove(manifest, rec);
    ++removed;
  }
  return removed;
}

std::vector<ArtifactCache::EntryInfo> ArtifactCache::list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<EntryInfo> out;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(options_.dir, ec)) {
    if (!is_entry_so(e.path())) continue;
    EntryInfo info;
    info.key_hex = e.path().filename().string().substr(1, 16);
    std::string so_bytes, manifest_text;
    Manifest m;
    fs::path manifest = e.path();
    manifest.replace_extension(".manifest");
    if (read_file(e.path().string(), &so_bytes) &&
        read_file(manifest.string(), &manifest_text) &&
        parse_manifest(manifest_text, &m)) {
      info.source_hash = m.source_hash;
      info.so_bytes = so_bytes.size();
      info.compiler = m.compiler;
      info.valid = so_bytes.size() == m.so_bytes &&
                   fnv1a_bytes(so_bytes) == m.so_hash &&
                   info.key_hex == hex64(m.key);
    }
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(), [](const EntryInfo& a, const EntryInfo& b) {
    return a.key_hex < b.key_hex;
  });
  return out;
}

std::size_t ArtifactCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(options_.dir, ec))
    if (is_entry_so(e.path())) ++n;
  return n;
}

ArtifactCache::Stats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

ArtifactCache* ArtifactCache::process_cache() {
  static const std::unique_ptr<ArtifactCache> cache = [] {
    const char* dir = std::getenv("PORTAL_JIT_CACHE_DIR");
    if (dir == nullptr || *dir == '\0') return std::unique_ptr<ArtifactCache>();
    try {
      Options options;
      options.dir = dir;
      return std::make_unique<ArtifactCache>(std::move(options));
    } catch (const std::exception& e) {
      PORTAL_LOG_WARN("artifact cache: PORTAL_JIT_CACHE_DIR unusable: %s",
                      e.what());
      return std::unique_ptr<ArtifactCache>();
    }
  }();
  return cache.get();
}

} // namespace portal
