// Portal -- the pattern backend (DESIGN.md Sec. 4, engine 2).
//
// Recognizes (operator stack, metric, envelope) shapes and dispatches to the
// pre-compiled specialized dual-tree kernels in src/problems. This is the
// engineering equivalent of the paper's "LLVM emits optimal vector code":
// the compiler *selects* host-compiler-optimized template kernels instead of
// emitting instructions itself. Unrecognized programs fall through to the
// JIT or VM engines.
#pragma once

#include <string>

#include "core/executor.h"
#include "core/plan.h"

namespace portal {

struct PatternDispatch {
  bool recognized = false;
  std::string name; // e.g. "knn", "kde", "two-point", "barnes-hut"
  ExecutionResult result;
};

/// Attempt recognition + execution. Returns recognized = false when the plan
/// does not match a specialized kernel (callers then pick another engine).
/// Never runs a mismatched kernel: recognition is exact.
PatternDispatch try_pattern_execute(const ProblemPlan& plan,
                                    const PortalConfig& config, TreeCache* cache);

/// Recognition only (no execution) -- used by Auto engine selection and the
/// compiler-pipeline bench.
std::string recognize_pattern(const ProblemPlan& plan, const PortalConfig& config);

} // namespace portal
