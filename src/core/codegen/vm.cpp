#include "core/codegen/vm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/verify/verify.h"
#include "kernels/fastmath.h"
#include "kernels/linalg.h"
#include "obs/trace.h"
#include "util/aligned.h"

namespace portal {

VmProgram VmProgram::compile(const IrExprPtr& expr) {
  // Verified-IR precondition: bytecode emission assumes structurally sound
  // trees (arity, payloads, no Temp plumbing) and reports violations with
  // the PTL-E codes instead of crashing mid-emit.
  verify_executable_expr(expr, "vm");
  PORTAL_OBS_COUNT("vm/programs_compiled", 1);
  VmProgram program;
  program.emit(expr);
  return program;
}

void VmProgram::emit(const IrExprPtr& e) {
  auto binary = [&](Op op) {
    emit(e->children[0]);
    emit(e->children[1]);
    code_.push_back({op, 0, 0});
  };
  auto unary = [&](Op op) {
    emit(e->children[0]);
    code_.push_back({op, 0, 0});
  };

  switch (e->op) {
    case IrOp::Const:
      code_.push_back({Op::PushConst, e->value, 0});
      return;
    case IrOp::LoadQCoord:
      code_.push_back({Op::LoadQCoord, 0, 0});
      return;
    case IrOp::LoadRCoord:
      code_.push_back({Op::LoadRCoord, 0, 0});
      return;
    case IrOp::Dist:
      code_.push_back({Op::Dist, 0, 0});
      return;
    case IrOp::DMin:
      code_.push_back({Op::DMin, 0, 0});
      return;
    case IrOp::DMax:
      code_.push_back({Op::DMax, 0, 0});
      return;
    case IrOp::CenterDist:
      code_.push_back({Op::CenterDist, 0, 0});
      return;
    case IrOp::RCount:
      code_.push_back({Op::RCount, 0, 0});
      return;
    case IrOp::Tau:
      code_.push_back({Op::Tau, 0, 0});
      return;
    case IrOp::QueryBound:
      code_.push_back({Op::Bound, 0, 0});
      return;
    case IrOp::Temp:
      throw std::invalid_argument(
          "VmProgram: Temp nodes are statement-IR plumbing, not executable");
    case IrOp::Add: binary(Op::Add); return;
    case IrOp::Sub: binary(Op::Sub); return;
    case IrOp::Mul: binary(Op::Mul); return;
    case IrOp::Div: binary(Op::Div); return;
    case IrOp::Min: binary(Op::Min); return;
    case IrOp::Max: binary(Op::Max); return;
    case IrOp::Less: binary(Op::Less); return;
    case IrOp::Greater: binary(Op::Greater); return;
    case IrOp::LogicalAnd: binary(Op::And); return;
    case IrOp::Neg: unary(Op::Neg); return;
    case IrOp::Abs: unary(Op::Abs); return;
    case IrOp::Sqrt: unary(Op::Sqrt); return;
    case IrOp::FastSqrt: unary(Op::FastSqrt); return;
    case IrOp::InvSqrt: unary(Op::InvSqrt); return;
    case IrOp::FastInvSqrt: unary(Op::FastInvSqrt); return;
    case IrOp::Exp: unary(Op::Exp); return;
    case IrOp::Log: unary(Op::Log); return;
    case IrOp::Pow:
      emit(e->children[0]);
      code_.push_back({Op::PowConst, e->value, 0});
      return;
    case IrOp::DimSum:
    case IrOp::DimMax: {
      const Op begin = e->op == IrOp::DimSum ? Op::BeginDimSum : Op::BeginDimMax;
      const int begin_ip = static_cast<int>(code_.size());
      code_.push_back({begin, 0, 0}); // arg patched below
      const int body_ip = static_cast<int>(code_.size());
      emit(e->children[0]);
      const int end_ip = static_cast<int>(code_.size());
      code_.push_back({Op::EndDim, 0, body_ip});
      code_[begin_ip].arg = end_ip;
      return;
    }
    case IrOp::MahalanobisNaive:
    case IrOp::MahalanobisChol: {
      const index_t m = static_cast<index_t>(
          std::llround(std::sqrt(static_cast<double>(e->matrix.size()))));
      if (m * m != static_cast<index_t>(e->matrix.size()))
        throw std::invalid_argument("VmProgram: malformed Mahalanobis matrix");
      MahaEntry entry;
      entry.m = m;
      if (e->op == IrOp::MahalanobisChol) {
        entry.use_chol = true;
        entry.matrix = e->matrix; // the L factor installed by the pass
      } else {
        entry.use_chol = false;
        entry.matrix = spd_inverse(e->matrix, m); // node carries the covariance
      }
      mahas_.push_back(std::move(entry));
      code_.push_back({Op::Maha, 0, static_cast<int>(mahas_.size() - 1)});
      return;
    }
    case IrOp::ExternalCall:
      externals_.push_back(e->external);
      code_.push_back({Op::External, 0, static_cast<int>(externals_.size() - 1)});
      return;
  }
  throw std::logic_error("VmProgram: unhandled IR op");
}

real_t VmProgram::run(const VmContext& ctx) const {
  PORTAL_OBS_COUNT("vm/kernel_evals", 1);
  real_t stack[64];
  int sp = 0;
  struct DimFrame {
    real_t acc;
    bool is_sum;
    index_t d;
  };
  DimFrame frames[4];
  int fp = 0; // active dim-loop frames
  index_t current_d = 0;

  const auto push = [&](real_t v) { stack[sp++] = v; };

  for (std::size_t ip = 0; ip < code_.size(); ++ip) {
    const Instr& ins = code_[ip];
    switch (ins.op) {
      case Op::PushConst: push(ins.value); break;
      case Op::LoadQCoord: push(ctx.q[current_d]); break;
      case Op::LoadRCoord: push(ctx.r[current_d]); break;
      case Op::Dist: push(ctx.dist); break;
      case Op::DMin: push(ctx.dmin); break;
      case Op::DMax: push(ctx.dmax); break;
      case Op::CenterDist: push(ctx.center); break;
      case Op::RCount: push(ctx.rcount); break;
      case Op::Tau: push(ctx.tau); break;
      case Op::Bound: push(ctx.bound); break;
      case Op::Add: stack[sp - 2] += stack[sp - 1]; --sp; break;
      case Op::Sub: stack[sp - 2] -= stack[sp - 1]; --sp; break;
      case Op::Mul: stack[sp - 2] *= stack[sp - 1]; --sp; break;
      case Op::Div: stack[sp - 2] /= stack[sp - 1]; --sp; break;
      case Op::Neg: stack[sp - 1] = -stack[sp - 1]; break;
      case Op::Abs: stack[sp - 1] = std::abs(stack[sp - 1]); break;
      case Op::Min:
        stack[sp - 2] = std::min(stack[sp - 2], stack[sp - 1]);
        --sp;
        break;
      case Op::Max:
        stack[sp - 2] = std::max(stack[sp - 2], stack[sp - 1]);
        --sp;
        break;
      case Op::PowConst: {
        const real_t exponent = ins.value;
        const real_t intpart = std::nearbyint(exponent);
        if (exponent == intpart && intpart >= 0 && intpart <= 32) {
          stack[sp - 1] = pow_int(stack[sp - 1], static_cast<int>(intpart));
        } else {
          stack[sp - 1] = std::pow(stack[sp - 1], exponent);
        }
        break;
      }
      case Op::Sqrt: stack[sp - 1] = std::sqrt(stack[sp - 1]); break;
      case Op::FastSqrt: stack[sp - 1] = fast_sqrt(stack[sp - 1]); break;
      case Op::InvSqrt:
        stack[sp - 1] = real_t(1) / std::sqrt(stack[sp - 1]);
        break;
      case Op::FastInvSqrt:
        stack[sp - 1] = fast_inv_sqrt(stack[sp - 1]);
        break;
      case Op::Exp: stack[sp - 1] = std::exp(stack[sp - 1]); break;
      case Op::Log: stack[sp - 1] = std::log(stack[sp - 1]); break;
      case Op::Less:
        stack[sp - 2] = stack[sp - 2] < stack[sp - 1] ? 1 : 0;
        --sp;
        break;
      case Op::Greater:
        stack[sp - 2] = stack[sp - 2] > stack[sp - 1] ? 1 : 0;
        --sp;
        break;
      case Op::And:
        stack[sp - 2] = (stack[sp - 2] != 0 && stack[sp - 1] != 0) ? 1 : 0;
        --sp;
        break;
      case Op::BeginDimSum:
      case Op::BeginDimMax:
        if (ctx.dim == 0) { // no dimensions: identity element, skip the body
          push(ins.op == Op::BeginDimSum
                   ? real_t(0)
                   : std::numeric_limits<real_t>::lowest());
          ip = static_cast<std::size_t>(ins.arg);
          break;
        }
        frames[fp++] = {ins.op == Op::BeginDimSum
                            ? real_t(0)
                            : std::numeric_limits<real_t>::lowest(),
                        ins.op == Op::BeginDimSum, 0};
        current_d = 0;
        break;
      case Op::EndDim: {
        DimFrame& frame = frames[fp - 1];
        const real_t body = stack[--sp];
        if (frame.is_sum)
          frame.acc += body;
        else
          frame.acc = std::max(frame.acc, body);
        ++frame.d;
        if (frame.d < ctx.dim) {
          current_d = frame.d;
          ip = static_cast<std::size_t>(ins.arg) - 1; // loop back
        } else {
          push(frame.acc);
          --fp;
          current_d = fp > 0 ? frames[fp - 1].d : 0;
        }
        break;
      }
      case Op::Maha: {
        const MahaEntry& entry = mahas_[ins.arg];
        push(entry.use_chol
                 ? mahalanobis_sq_cholesky(ctx.q, ctx.r, entry.matrix, entry.m,
                                           ctx.scratch)
                 : mahalanobis_sq_naive(ctx.q, ctx.r, entry.matrix, entry.m));
        break;
      }
      case Op::External:
        push(externals_[ins.arg](ctx.q, ctx.r, ctx.dim));
        break;
    }
  }
  return sp > 0 ? stack[sp - 1] : 0;
}

void VmProgram::run_batch(const BatchContext& ctx, real_t* out) const {
  PORTAL_OBS_COUNT("vm/batch_evals", 1);
  // Lane width: one SoA stack slot is a kLanes-wide vector. 16 doubles spans
  // two AVX-512 / four AVX2 registers; the whole stack stays under 8 KiB.
  constexpr index_t kLanes = 16;

  for (index_t block = 0; block < ctx.count; block += kLanes) {
    const index_t w = std::min(kLanes, ctx.count - block);
    alignas(kCacheLineBytes) real_t stack[64][kLanes];
    int sp = 0;
    struct DimFrame {
      real_t acc[kLanes];
      bool is_sum;
      index_t d;
    };
    DimFrame frames[4];
    int fp = 0;
    index_t current_d = 0;

    const auto broadcast = [&](real_t v) {
      real_t* slot = stack[sp++];
#pragma omp simd
      for (index_t l = 0; l < w; ++l) slot[l] = v;
    };

    for (std::size_t ip = 0; ip < code_.size(); ++ip) {
      const Instr& ins = code_[ip];
      real_t* top = sp > 0 ? stack[sp - 1] : nullptr;
      real_t* under = sp > 1 ? stack[sp - 2] : nullptr;
      switch (ins.op) {
        case Op::PushConst: broadcast(ins.value); break;
        case Op::LoadQCoord: broadcast(ctx.q[current_d]); break;
        case Op::LoadRCoord: {
          const real_t* slice =
              ctx.rlanes + current_d * ctx.rstride + ctx.rbegin + block;
          real_t* slot = stack[sp++];
#pragma omp simd
          for (index_t l = 0; l < w; ++l) slot[l] = slice[l];
          break;
        }
        // Node-pair atoms are absent from pair kernels; they read as the
        // defaulted-VmContext zeros so run_batch degrades exactly like
        // run_pair would on such a program.
        case Op::Dist:
        case Op::DMin:
        case Op::DMax:
        case Op::CenterDist:
        case Op::RCount:
        case Op::Tau:
        case Op::Bound: broadcast(0); break;
        case Op::Add:
#pragma omp simd
          for (index_t l = 0; l < w; ++l) under[l] += top[l];
          --sp;
          break;
        case Op::Sub:
#pragma omp simd
          for (index_t l = 0; l < w; ++l) under[l] -= top[l];
          --sp;
          break;
        case Op::Mul:
#pragma omp simd
          for (index_t l = 0; l < w; ++l) under[l] *= top[l];
          --sp;
          break;
        case Op::Div:
#pragma omp simd
          for (index_t l = 0; l < w; ++l) under[l] /= top[l];
          --sp;
          break;
        case Op::Neg:
#pragma omp simd
          for (index_t l = 0; l < w; ++l) top[l] = -top[l];
          break;
        case Op::Abs:
#pragma omp simd
          for (index_t l = 0; l < w; ++l) top[l] = std::abs(top[l]);
          break;
        case Op::Min:
#pragma omp simd
          for (index_t l = 0; l < w; ++l) under[l] = std::min(under[l], top[l]);
          --sp;
          break;
        case Op::Max:
#pragma omp simd
          for (index_t l = 0; l < w; ++l) under[l] = std::max(under[l], top[l]);
          --sp;
          break;
        case Op::PowConst: {
          const real_t exponent = ins.value;
          const real_t intpart = std::nearbyint(exponent);
          if (exponent == intpart && intpart >= 0 && intpart <= 32) {
            const int e = static_cast<int>(intpart);
            for (index_t l = 0; l < w; ++l) top[l] = pow_int(top[l], e);
          } else {
            for (index_t l = 0; l < w; ++l) top[l] = std::pow(top[l], exponent);
          }
          break;
        }
        case Op::Sqrt:
#pragma omp simd
          for (index_t l = 0; l < w; ++l) top[l] = std::sqrt(top[l]);
          break;
        case Op::FastSqrt:
          for (index_t l = 0; l < w; ++l) top[l] = fast_sqrt(top[l]);
          break;
        case Op::InvSqrt:
#pragma omp simd
          for (index_t l = 0; l < w; ++l) top[l] = real_t(1) / std::sqrt(top[l]);
          break;
        case Op::FastInvSqrt:
          for (index_t l = 0; l < w; ++l) top[l] = fast_inv_sqrt(top[l]);
          break;
        case Op::Exp:
          for (index_t l = 0; l < w; ++l) top[l] = std::exp(top[l]);
          break;
        case Op::Log:
          for (index_t l = 0; l < w; ++l) top[l] = std::log(top[l]);
          break;
        case Op::Less:
#pragma omp simd
          for (index_t l = 0; l < w; ++l)
            under[l] = under[l] < top[l] ? 1 : 0;
          --sp;
          break;
        case Op::Greater:
#pragma omp simd
          for (index_t l = 0; l < w; ++l)
            under[l] = under[l] > top[l] ? 1 : 0;
          --sp;
          break;
        case Op::And:
#pragma omp simd
          for (index_t l = 0; l < w; ++l)
            under[l] = (under[l] != 0 && top[l] != 0) ? 1 : 0;
          --sp;
          break;
        case Op::BeginDimSum:
        case Op::BeginDimMax: {
          const real_t init = ins.op == Op::BeginDimSum
                                  ? real_t(0)
                                  : std::numeric_limits<real_t>::lowest();
          if (ctx.dim == 0) { // no dimensions: identity element, skip the body
            broadcast(init);
            ip = static_cast<std::size_t>(ins.arg);
            break;
          }
          DimFrame& frame = frames[fp++];
          for (index_t l = 0; l < kLanes; ++l) frame.acc[l] = init;
          frame.is_sum = ins.op == Op::BeginDimSum;
          frame.d = 0;
          current_d = 0;
          break;
        }
        case Op::EndDim: {
          DimFrame& frame = frames[fp - 1];
          const real_t* body = stack[--sp];
          if (frame.is_sum) {
#pragma omp simd
            for (index_t l = 0; l < w; ++l) frame.acc[l] += body[l];
          } else {
#pragma omp simd
            for (index_t l = 0; l < w; ++l)
              frame.acc[l] = std::max(frame.acc[l], body[l]);
          }
          ++frame.d;
          if (frame.d < ctx.dim) {
            current_d = frame.d;
            ip = static_cast<std::size_t>(ins.arg) - 1; // loop back
          } else {
            real_t* slot = stack[sp++];
#pragma omp simd
            for (index_t l = 0; l < w; ++l) slot[l] = frame.acc[l];
            --fp;
            current_d = fp > 0 ? frames[fp - 1].d : 0;
          }
          break;
        }
        case Op::Maha: {
          // Per-lane scalar solve over a gathered contiguous point; the
          // blocked batch::maha_sq_dists flavor serves the specialized
          // paths, while the VM keeps the generic (exact-parity) fallback.
          const MahaEntry& entry = mahas_[ins.arg];
          real_t* rpt = ctx.scratch + 2 * ctx.dim;
          real_t* slot = stack[sp++];
          for (index_t l = 0; l < w; ++l) {
            const index_t j = ctx.rbegin + block + l;
            for (index_t d = 0; d < ctx.dim; ++d)
              rpt[d] = ctx.rlanes[d * ctx.rstride + j];
            slot[l] = entry.use_chol
                          ? mahalanobis_sq_cholesky(ctx.q, rpt, entry.matrix,
                                                    entry.m, ctx.scratch)
                          : mahalanobis_sq_naive(ctx.q, rpt, entry.matrix,
                                                 entry.m);
          }
          break;
        }
        case Op::External: {
          real_t* rpt = ctx.scratch + 2 * ctx.dim;
          real_t* slot = stack[sp++];
          for (index_t l = 0; l < w; ++l) {
            const index_t j = ctx.rbegin + block + l;
            for (index_t d = 0; d < ctx.dim; ++d)
              rpt[d] = ctx.rlanes[d * ctx.rstride + j];
            slot[l] = externals_[ins.arg](ctx.q, rpt, ctx.dim);
          }
          break;
        }
      }
    }
    real_t* tile_out = out + block;
    if (sp > 0) {
      const real_t* result = stack[sp - 1];
#pragma omp simd
      for (index_t l = 0; l < w; ++l) tile_out[l] = result[l];
    } else {
      for (index_t l = 0; l < w; ++l) tile_out[l] = 0;
    }
  }
}

} // namespace portal
