#include "util/threading.h"

#include <omp.h>

namespace portal {

int num_threads() { return omp_get_max_threads(); }

void set_num_threads(int n) {
  if (n > 0) omp_set_num_threads(n);
}

bool in_parallel_region() { return omp_in_parallel() != 0; }

int task_spawn_depth(int threads) {
  if (threads <= 1) return 0;
  int depth = 0;
  int covered = 1;
  while (covered < threads) {
    covered *= 2;
    ++depth;
  }
  return depth + 2;
}

} // namespace portal
