// Portal -- CSV reading/writing for Storage objects (Sec. III-B of the paper:
// `Storage query{"query_file.csv"}`).
//
// The dialect is deliberately simple: comma (or user-chosen) separated numeric
// fields, optional single header row (auto-detected: a row whose fields do not
// all parse as numbers), '#' comment lines, blank lines ignored. Ragged rows
// and non-numeric payloads are hard errors carrying line numbers so user
// mistakes surface immediately instead of corrupting a dataset.
#pragma once

#include <string>
#include <vector>

#include "util/common.h"

namespace portal {

struct CsvOptions {
  char separator = ',';
  /// If true the first non-comment row is unconditionally skipped; if false it
  /// is auto-detected as header when any field fails numeric parsing.
  bool force_header = false;
};

struct CsvTable {
  /// Row-major values: row i occupies [i*cols, (i+1)*cols).
  std::vector<real_t> values;
  index_t rows = 0;
  index_t cols = 0;
};

/// Parse a CSV file into a dense numeric table. Throws std::runtime_error with
/// file/line context on I/O failure, ragged rows, or unparseable fields.
CsvTable read_csv(const std::string& path, const CsvOptions& options = {});

/// Parse CSV from an in-memory string (used heavily by tests).
CsvTable read_csv_string(const std::string& text, const CsvOptions& options = {},
                         const std::string& name = "<string>");

/// Write a table to disk, one row per line, `separator`-joined, %.17g so a
/// round-trip through read_csv reproduces the values exactly.
void write_csv(const std::string& path, const real_t* values, index_t rows,
               index_t cols, const CsvOptions& options = {});

} // namespace portal
