// Portal -- clang thread-safety-analysis shim.
//
// The serve/obs lock protocols are documented in comments (service.h spells
// out which mutex guards which field); this header turns those comments into
// machine-checked contracts under `clang -Wthread-safety`. Under gcc (which
// has no thread-safety analysis) every macro expands to nothing and the
// wrapper types degrade to thin std::mutex / lock_guard equivalents, so the
// annotations are zero-cost on the tier-1 toolchain.
//
// The std library's mutex types are not annotated as capabilities, so
// annotating call sites requires wrapping them: `Mutex` is an annotated
// capability over std::mutex, `MutexLock` the scoped RAII holder, and
// `CondVar` a condition variable over std::condition_variable_any that waits
// on a Mutex directly (condition_variable_any accepts any BasicLockable,
// which is exactly what the analysis needs -- no unique_lock indirection
// whose lock state the checker cannot track).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PORTAL_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PORTAL_THREAD_ANNOTATION
#define PORTAL_THREAD_ANNOTATION(x)
#endif

#define PORTAL_CAPABILITY(x) PORTAL_THREAD_ANNOTATION(capability(x))
#define PORTAL_SCOPED_CAPABILITY PORTAL_THREAD_ANNOTATION(scoped_lockable)
#define PORTAL_GUARDED_BY(x) PORTAL_THREAD_ANNOTATION(guarded_by(x))
#define PORTAL_PT_GUARDED_BY(x) PORTAL_THREAD_ANNOTATION(pt_guarded_by(x))
#define PORTAL_REQUIRES(...) \
  PORTAL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PORTAL_EXCLUDES(...) \
  PORTAL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define PORTAL_ACQUIRE(...) \
  PORTAL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PORTAL_RELEASE(...) \
  PORTAL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PORTAL_TRY_ACQUIRE(...) \
  PORTAL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define PORTAL_NO_THREAD_SAFETY_ANALYSIS \
  PORTAL_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace portal {

/// Annotated mutex capability. Also satisfies BasicLockable, so CondVar can
/// wait on it directly.
class PORTAL_CAPABILITY("mutex") Mutex {
 public:
  void lock() PORTAL_ACQUIRE() { mutex_.lock(); }
  void unlock() PORTAL_RELEASE() { mutex_.unlock(); }
  bool try_lock() PORTAL_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// Scoped holder, the annotated analogue of std::lock_guard<Mutex>.
class PORTAL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) PORTAL_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() PORTAL_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable that waits on a Mutex. Callers hold the mutex across
/// the wait (the analysis sees the capability continuously held, which is
/// the actual invariant: wait() reacquires before returning). Predicates are
/// re-checked in an explicit while loop at the call site rather than via a
/// lambda overload -- clang analyzes lambda bodies as separate functions and
/// would flag the guarded-member reads inside them.
class CondVar {
 public:
  void wait(Mutex& mutex) PORTAL_REQUIRES(mutex) { cv_.wait(mutex); }
  /// Timed wait for bounded blocking (ingest overflow admission): same
  /// explicit-predicate-loop convention as wait().
  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mutex,
                          const std::chrono::duration<Rep, Period>& timeout)
      PORTAL_REQUIRES(mutex) {
    return cv_.wait_for(mutex, timeout);
  }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

} // namespace portal
