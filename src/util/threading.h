// Portal -- OpenMP helpers shared by the parallel traversal and benchmarks.
#pragma once

#include "util/common.h"

namespace portal {

/// Number of OpenMP threads a parallel region would use right now.
int num_threads();

/// Override the OpenMP thread count for subsequent parallel regions.
void set_num_threads(int n);

/// Depth at which the task-parallel traversal stops spawning tasks and
/// switches to data parallelism (Sec. IV-F: "spawn OpenMP tasks recursively
/// until all the threads are saturated"). ceil(log2(threads)) + 2 keeps
/// roughly 4x as many tasks as threads for load balance.
int task_spawn_depth(int threads);

/// True when called from inside an active OpenMP parallel region. Tree
/// constructors use this to avoid opening a nested region (which OpenMP
/// would serialize anyway) when a caller already parallelized around them.
bool in_parallel_region();

/// Smallest subrange worth a build task: below this, nth_element and the
/// box pass finish faster than task bookkeeping, so the divide-and-conquer
/// tree builds recurse inline.
inline constexpr index_t kMinParallelBuildCount = 4096;

} // namespace portal
