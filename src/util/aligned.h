// Portal -- cache-line / SIMD aligned buffer.
//
// Base-case kernels are auto-vectorized by the host compiler; aligning the
// coordinate arrays to 64 bytes keeps loads on vector-register boundaries and
// avoids split cache lines, matching the data-layout discussion in Sec. IV-F
// of the paper.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>

#include "util/common.h"

namespace portal {

inline constexpr std::size_t kCacheLineBytes = 64;

/// A fixed-capacity, 64-byte-aligned array of trivially-copyable T.
/// Move-only; zero-initialized on construction.
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count) { allocate(count); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  /// (Re)allocate to hold `count` elements, zero-initialized.
  void allocate(std::size_t count) {
    release();
    if (count == 0) return;
    // Round byte size up to an alignment multiple as required by aligned_alloc.
    std::size_t bytes = count * sizeof(T);
    bytes = (bytes + kCacheLineBytes - 1) / kCacheLineBytes * kCacheLineBytes;
    data_ = static_cast<T*>(std::aligned_alloc(kCacheLineBytes, bytes));
    if (data_ == nullptr) throw std::bad_alloc();
    for (std::size_t i = 0; i < count; ++i) data_[i] = T{};
    size_ = count;
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  void release() {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

} // namespace portal
