#include "util/csv.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace portal {
namespace {

[[noreturn]] void fail(const std::string& name, index_t line, const std::string& what) {
  throw std::runtime_error("csv: " + name + ":" + std::to_string(line) + ": " + what);
}

bool parse_field(const std::string& field, real_t* out) {
  const char* begin = field.c_str();
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(begin, &end);
  if (end == begin || errno == ERANGE) return false;
  // Allow trailing whitespace only.
  while (*end == ' ' || *end == '\t' || *end == '\r') ++end;
  if (*end != '\0') return false;
  *out = static_cast<real_t>(value);
  return true;
}

void split(const std::string& line, char sep, std::vector<std::string>* fields) {
  fields->clear();
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(sep, start);
    if (pos == std::string::npos) {
      fields->push_back(line.substr(start));
      return;
    }
    fields->push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
}

bool is_blank_or_comment(const std::string& line) {
  for (char c : line) {
    if (c == '#') return true;
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

CsvTable parse_stream(std::istream& in, const CsvOptions& options,
                      const std::string& name) {
  CsvTable table;
  std::string line;
  std::vector<std::string> fields;
  std::vector<real_t> row;
  index_t line_no = 0;
  bool first_data_row = true;

  while (std::getline(in, line)) {
    ++line_no;
    if (is_blank_or_comment(line)) continue;
    split(line, options.separator, &fields);

    row.clear();
    bool all_numeric = true;
    for (const std::string& field : fields) {
      real_t value = 0;
      if (!parse_field(field, &value)) {
        all_numeric = false;
        break;
      }
      row.push_back(value);
    }

    if (first_data_row) {
      first_data_row = false;
      if (options.force_header || !all_numeric) continue; // header row
      table.cols = static_cast<index_t>(row.size());
    } else if (!all_numeric) {
      fail(name, line_no, "non-numeric field in data row");
    }

    if (table.cols == 0) table.cols = static_cast<index_t>(row.size());
    if (static_cast<index_t>(row.size()) != table.cols) {
      fail(name, line_no,
           "ragged row: expected " + std::to_string(table.cols) + " fields, got " +
               std::to_string(row.size()));
    }
    table.values.insert(table.values.end(), row.begin(), row.end());
    ++table.rows;
  }
  return table;
}

} // namespace

CsvTable read_csv(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("csv: cannot open '" + path + "'");
  return parse_stream(in, options, path);
}

CsvTable read_csv_string(const std::string& text, const CsvOptions& options,
                         const std::string& name) {
  std::istringstream in(text);
  return parse_stream(in, options, name);
}

void write_csv(const std::string& path, const real_t* values, index_t rows,
               index_t cols, const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("csv: cannot open '" + path + "' for writing");
  char buf[64];
  for (index_t i = 0; i < rows; ++i) {
    for (index_t j = 0; j < cols; ++j) {
      std::snprintf(buf, sizeof(buf), "%.17g", static_cast<double>(values[i * cols + j]));
      out << buf;
      if (j + 1 < cols) out << options.separator;
    }
    out << '\n';
  }
  if (!out) throw std::runtime_error("csv: write failed for '" + path + "'");
}

} // namespace portal
