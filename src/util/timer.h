// Portal -- wall-clock timing helpers for the benchmark harness.
#pragma once

#include <chrono>

namespace portal {

/// Monotonic wall-clock stopwatch. `elapsed_s()` may be called repeatedly;
/// `reset()` restarts the epoch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds since construction or last reset().
  double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_s() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

} // namespace portal
