// Portal -- minimal leveled logging.
//
// Logging is off by default (level = Warn) so library users see nothing
// unless they opt in; the compiler pipeline uses Debug level to trace passes.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace portal {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

namespace detail {
inline LogLevel& log_level_ref() {
  static LogLevel level = LogLevel::Warn;
  return level;
}
} // namespace detail

/// Set the global log threshold; messages below it are dropped.
inline void set_log_level(LogLevel level) { detail::log_level_ref() = level; }
inline LogLevel log_level() { return detail::log_level_ref(); }

template <typename... Args>
void log_at(LogLevel level, const char* tag, const char* fmt, Args&&... args) {
  if (static_cast<int>(level) < static_cast<int>(detail::log_level_ref())) return;
  std::fprintf(stderr, "[portal:%s] ", tag);
  if constexpr (sizeof...(Args) == 0) {
    std::fprintf(stderr, "%s", fmt);
  } else {
    std::fprintf(stderr, fmt, std::forward<Args>(args)...);
  }
  std::fprintf(stderr, "\n");
}

#define PORTAL_LOG_DEBUG(...) ::portal::log_at(::portal::LogLevel::Debug, "debug", __VA_ARGS__)
#define PORTAL_LOG_INFO(...) ::portal::log_at(::portal::LogLevel::Info, "info", __VA_ARGS__)
#define PORTAL_LOG_WARN(...) ::portal::log_at(::portal::LogLevel::Warn, "warn", __VA_ARGS__)
#define PORTAL_LOG_ERROR(...) ::portal::log_at(::portal::LogLevel::Error, "error", __VA_ARGS__)

} // namespace portal
