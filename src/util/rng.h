// Portal -- deterministic random number generation.
//
// All synthetic data in tests and benchmarks flows through this PRNG so that
// every run of the harness is reproducible bit-for-bit. We use our own
// xoshiro256++ rather than std::mt19937 because (a) distribution outputs of
// <random> are not specified cross-platform and (b) it is measurably faster
// when generating multi-million point datasets.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/common.h"

namespace portal {

/// xoshiro256++ by Blackman & Vigna (public domain reference implementation
/// re-expressed). Seeded via splitmix64 so any 64-bit seed is safe.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform real in [0, 1).
  real_t uniform() {
    return static_cast<real_t>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  real_t uniform(real_t lo, real_t hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Box-Muller (caches the spare deviate).
  real_t normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    real_t u1 = uniform();
    real_t u2 = uniform();
    // Avoid log(0).
    if (u1 < 1e-300) u1 = 1e-300;
    const real_t mag = std::sqrt(real_t(-2) * std::log(u1));
    const real_t two_pi = real_t(6.283185307179586476925286766559);
    spare_ = mag * std::sin(two_pi * u2);
    have_spare_ = true;
    return mag * std::cos(two_pi * u2);
  }

  real_t normal(real_t mean, real_t stddev) { return mean + stddev * normal(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
  real_t spare_ = 0;
  bool have_spare_ = false;
};

} // namespace portal
