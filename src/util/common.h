// Portal -- common definitions shared across all modules.
#pragma once

#include <cstddef>
#include <cstdint>

namespace portal {

/// Floating-point type used throughout the library for coordinates,
/// distances, and kernel values. The paper evaluates in double precision
/// (EPYC peak quoted in double GFlops/s); float inputs are widened on entry.
using real_t = double;

/// Index type for points, tree nodes, and dimensions. Signed to keep
/// arithmetic on differences well-defined and OpenMP-friendly.
using index_t = std::int64_t;

} // namespace portal
