// Portal -- resumable single-tree traversal: the executor-model form of the
// depth-first descent (DESIGN.md Sec. 15).
//
// The classic descent in traversal/singletree.h runs one query to completion;
// every node or SoA-tile cache miss stalls the calling thread. The serving
// runtime instead wants *many* in-flight descents per worker so one query's
// miss is hidden behind another's compute -- the executor model of Dekate et
// al. and redwood-rt's NnExecutor. This header provides the two pieces:
//
//   * NodeFrontier: the explicit descent stack as a first-class, bound-safe
//     object -- an inline small buffer covering every balanced tree plus heap
//     growth for pathological shapes. This replaces the unchecked
//     `index_t stack[512]` the old descent carried (its "~512" bound was an
//     octree-only argument; kd/ball builds have no depth cap, and a
//     degenerate tree could overflow it silently).
//   * TraversalCursor: a suspended descent. `resume(max_steps)` pops and
//     processes up to max_steps nodes, then suspends, issuing a software
//     prefetch for the next node (and, through the optional rule-set hook,
//     its SoA tile) so the line is in flight while the worker runs a sibling
//     cursor. `next_leaf()` is the device-backend flavor: it advances to the
//     next leaf base case and yields it *without* executing it -- the
//     explicit (query, leaf-tile) work frontier an accelerator queue
//     consumes (ROADMAP item 3).
//
// Determinism contract: a cursor pops, prunes, expands, and evaluates nodes
// in *exactly* the order of single_traverse -- both sides share
// push_ordered_children below -- so any interleaving of resume() calls
// across queries is bitwise-identical to running each query's recursive
// descent alone. The differential fuzz wall (test_codegen_fuzz
// CursorVsRecursiveBitwiseIdentical) pins this at tau = 0.
#pragma once

#include <concepts>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "traversal/multitree.h"
#include "traversal/rules.h"
#include "util/common.h"

/// Read-prefetch with high temporal locality; a no-op where unsupported.
#if defined(__GNUC__) || defined(__clang__)
#define PORTAL_PREFETCH_READ(addr) __builtin_prefetch((addr), 0, 3)
#else
#define PORTAL_PREFETCH_READ(addr) ((void)0)
#endif

namespace portal {

/// Rule set for one descent: `prune_or_take(node)` returns true when the
/// subtree is fully handled (pruned as irrelevant OR consumed in bulk, e.g. a
/// Barnes-Hut cell acceptance); `base_case(node)` evaluates a leaf exactly.
template <typename R>
concept SingleRuleSet = requires(R r, index_t node) {
  { r.prune_or_take(node) } -> std::convertible_to<bool>;
  { r.base_case(node) };
};

/// Optional nearest-first child ordering, exactly as in the dual traversal.
template <typename R>
concept ScoredSingleRuleSet = SingleRuleSet<R> && requires(R r, index_t node) {
  { r.score(node) } -> std::convertible_to<real_t>;
};

/// Optional prefetch hook: called with the node a suspended cursor will pop
/// next, so rule sets can start the loads their base case will need (the
/// serving rules prefetch the leaf's SoA tile lane).
template <typename R>
concept PrefetchingSingleRuleSet = requires(R r, index_t node) {
  { r.prefetch(node) };
};

/// The descent stack as a first-class object: LIFO of node indices with an
/// inline buffer sized for every tree the builders produce (binary median
/// splits stay under ~64 entries; the depth-60 octree worst case is ~428)
/// and transparent heap growth beyond it, so no tree shape -- including
/// degenerate externally-built ones -- can overflow it.
class NodeFrontier {
 public:
  NodeFrontier() = default;
  // data_ points into the object; default copy/move would alias the source's
  // buffer. Traversals own their frontier for one descent, so neither is
  // needed.
  NodeFrontier(const NodeFrontier&) = delete;
  NodeFrontier& operator=(const NodeFrontier&) = delete;

  bool empty() const { return size_ == 0; }
  index_t size() const { return size_; }
  /// Next node resume() will pop; callers must check !empty().
  index_t top() const { return data_[size_ - 1]; }
  index_t pop() { return data_[--size_]; }
  void push(index_t node) {
    if (size_ == capacity_) grow();
    data_[size_++] = node;
  }
  void clear() { size_ = 0; }
  /// True once the descent outgrew the inline buffer (obs: the same event
  /// bumps traversal/cursor/frontier_spills).
  bool spilled() const { return data_ != small_; }

  /// Inline capacity: one cacheline-friendly page that covers the worst case
  /// of every in-tree builder without touching the heap.
  static constexpr index_t kInlineCapacity = 512;

 private:
  void grow() {
    const index_t next_capacity = capacity_ * 2;
    heap_.resize(static_cast<std::size_t>(next_capacity));
    if (data_ == small_) std::copy(small_, small_ + size_, heap_.data());
    data_ = heap_.data(); // resize preserves prior heap contents
    capacity_ = next_capacity;
    PORTAL_OBS_COUNT("traversal/cursor/frontier_spills", 1);
  }

  index_t small_[kInlineCapacity];
  std::vector<index_t> heap_;
  index_t* data_ = small_;
  index_t size_ = 0;
  index_t capacity_ = kInlineCapacity;
};

/// Expand one non-leaf node onto the frontier in oracle order: scored rule
/// sets push farthest-first so the nearest child pops first; unscored rule
/// sets push right-to-left so leaves evaluate in ascending permuted order
/// (load-bearing for the serving engine's bitwise SUM determinism,
/// src/serve/engine.h). Shared by single_traverse and TraversalCursor so the
/// two forms cannot drift apart.
template <typename Rules>
  requires SingleRuleSet<Rules>
inline void push_ordered_children(Rules& rules, index_t* children, int count,
                                  NodeFrontier& frontier) {
  if constexpr (ScoredSingleRuleSet<Rules>) {
    real_t score[8];
    for (int i = 0; i < count; ++i) score[i] = rules.score(children[i]);
    for (int i = 1; i < count; ++i)
      for (int j = i; j > 0 && score[j] < score[j - 1]; --j) {
        std::swap(score[j], score[j - 1]);
        std::swap(children[j], children[j - 1]);
      }
  }
  for (int i = count - 1; i >= 0; --i) frontier.push(children[i]);
}

enum class CursorState {
  Active, // frontier non-empty; call resume() again
  Done,   // descent finished; stats() is final
};

/// One suspended single-tree descent. Construction seeds the frontier with
/// the root; resume(max_steps) advances the same state machine
/// single_traverse runs, then suspends with a prefetch of the next node so
/// callers can hide the miss behind another cursor's compute. Cursors hold
/// references to the tree and rule set -- both must outlive the cursor --
/// and are neither copyable nor movable (the frontier pins its inline
/// buffer); hold them in a std::deque for stable addresses.
template <typename Tree, typename Rules>
  requires SingleRuleSet<Rules>
class TraversalCursor {
 public:
  TraversalCursor(const Tree& tree, Rules& rules)
      : tree_(&tree), rules_(&rules) {
    frontier_.push(tree.root_index());
  }
  TraversalCursor(const TraversalCursor&) = delete;
  TraversalCursor& operator=(const TraversalCursor&) = delete;

  bool done() const { return done_; }
  /// Exact same counters single_traverse would return for this query;
  /// partial until done() (monotone across resumes).
  const TraversalStats& stats() const { return stats_; }
  const NodeFrontier& frontier() const { return frontier_; }

  /// Pop and process up to `max_steps` nodes (a step is one node visit:
  /// prune, base case, or expansion -- the unit stats.pairs_visited counts).
  /// Returns Done when the descent completed within the budget; otherwise
  /// suspends at the step boundary with the next node's cacheline already
  /// requested.
  CursorState resume(index_t max_steps) {
    if (done_) return CursorState::Done;
    ++resumes_;
    index_t children[8];
    for (index_t step = 0; step < max_steps; ++step) {
      if (frontier_.empty()) return finish();
      step_once(children);
    }
    if (frontier_.empty()) return finish();
    ++suspends_;
    prefetch_next();
    return CursorState::Active;
  }

  /// Device-backend flavor: advance (pruning and expanding inline) until the
  /// next leaf base case *would* run, and return that leaf without executing
  /// it -- the caller owns the leaf-tile work (a host caller runs
  /// rules.base_case(leaf); an accelerator backend enqueues the tile).
  /// Returns -1 when the descent is finished. The yielded leaf is counted in
  /// stats().base_cases at yield time, so draining next_leaf() and running
  /// each base case reproduces single_traverse's stats exactly.
  index_t next_leaf() {
    if (done_) return -1;
    index_t children[8];
    while (!frontier_.empty()) {
      const index_t node = frontier_.pop();
      ++stats_.pairs_visited;
      if (rules_->prune_or_take(node)) {
        ++stats_.prunes;
        continue;
      }
      if (tree_node_is_leaf(*tree_, node)) {
        ++stats_.base_cases;
        prefetch_next();
        return node;
      }
      const int count = tree_children(*tree_, node, children);
      push_ordered_children(*rules_, children, count, frontier_);
    }
    finish();
    return -1;
  }

 private:
  void step_once(index_t* children) {
    const index_t node = frontier_.pop();
    ++stats_.pairs_visited;
    if (rules_->prune_or_take(node)) {
      ++stats_.prunes;
      return;
    }
    if (tree_node_is_leaf(*tree_, node)) {
      ++stats_.base_cases;
      rules_->base_case(node);
      return;
    }
    const int count = tree_children(*tree_, node, children);
    push_ordered_children(*rules_, children, count, frontier_);
  }

  /// Suspension point: request the next node's line (and let the rule set
  /// request its leaf tile) so the loads overlap a sibling cursor's compute.
  void prefetch_next() {
    const index_t next = frontier_.top();
    PORTAL_PREFETCH_READ(&tree_->node(next));
    if constexpr (PrefetchingSingleRuleSet<Rules>) rules_->prefetch(next);
    ++prefetches_;
  }

  CursorState finish() {
    done_ = true;
    // One bulk merge per descent, mirroring single_traverse's flush policy.
    PORTAL_OBS_COUNT("traversal/cursor/descents", 1);
    PORTAL_OBS_COUNT("traversal/cursor/steps", stats_.pairs_visited);
    PORTAL_OBS_COUNT("traversal/cursor/resumes", resumes_);
    PORTAL_OBS_COUNT("traversal/cursor/suspends", suspends_);
    PORTAL_OBS_COUNT("traversal/cursor/prefetches", prefetches_);
    return CursorState::Done;
  }

  const Tree* tree_;
  Rules* rules_;
  NodeFrontier frontier_;
  TraversalStats stats_;
  std::uint64_t resumes_ = 0, suspends_ = 0, prefetches_ = 0;
  bool done_ = false;
};

} // namespace portal
