// Portal -- the rule-set concept consumed by the multi-tree traversal.
//
// Algorithm 1 of the paper is parameterized by a rule set R providing
// Prune/Approximate, ComputeApprox, and BaseCase. In this implementation the
// first two are fused into `prune_or_approx` (returning true means the node
// tuple was fully handled -- either pruned or replaced by its approximation),
// matching how lines 1-2 of Algorithm 1 consume them.
#pragma once

#include <concepts>
#include <cstdint>

#include "util/common.h"

namespace portal {

/// Minimal rule set: enough to drive the traversal.
template <typename R>
concept DualRuleSet = requires(R r, index_t q, index_t ref) {
  { r.prune_or_approx(q, ref) } -> std::convertible_to<bool>;
  { r.base_case(q, ref) };
};

/// Optional extension: rules may order sibling recursions by a score
/// (lower visits first). Visiting near reference nodes first tightens bounds
/// early, which is how the expert implementations maximize pruning.
template <typename R>
concept ScoredDualRuleSet = DualRuleSet<R> && requires(R r, index_t q, index_t ref) {
  { r.score(q, ref) } -> std::convertible_to<real_t>;
};

/// Counters the traversal fills. Plain (non-atomic) integers: the parallel
/// traversal accumulates into a task-local copy threaded through each
/// recursion and merges it into a cacheline-padded per-thread slot when the
/// task finishes, so counting adds zero shared read-modify-writes per
/// visited node pair. Merging happens at task boundaries; totals are exact
/// once the traversal's join completes, and for a fixed (non-adaptive) rule
/// set they equal the serial counts bit-for-bit.
struct TraversalStats {
  std::uint64_t pairs_visited = 0;  // node tuples examined
  std::uint64_t prunes = 0;         // tuples handled by Prune/Approximate
  std::uint64_t base_cases = 0;     // leaf tuples evaluated exactly
  /// Wall-clock seconds of the traversal itself (set by dual_traverse and
  /// multi_traverse; excludes tree construction, whose cost lives in the
  /// tree's own stats). Gives callers the build vs. traverse time split.
  double elapsed_seconds = 0;

  TraversalStats& operator+=(const TraversalStats& other) {
    pairs_visited += other.pairs_visited;
    prunes += other.prunes;
    base_cases += other.base_cases;
    elapsed_seconds += other.elapsed_seconds;
    return *this;
  }
};

} // namespace portal
