// Portal -- multi-tree traversal (Algorithm 1 of the paper).
//
// Two entry points:
//   * dual_traverse(): the m = 2 specialization every evaluated problem uses.
//     Serial or OpenMP task-parallel (Sec. IV-F: tasks are spawned down the
//     recursion until threads saturate, then execution switches to data
//     parallelism inside the base cases). Parallel recursion only forks on
//     *query-side* splits so concurrent rule invocations always see disjoint
//     query ranges -- rule sets need no locking for per-query state.
//   * multi_traverse(): the general m-way PowerSet-Tuples recursion, faithful
//     to Algorithm 1 line 9-11, used for m != 2 problems and as the oracle
//     the dual specialization is tested against.
#pragma once

#include <array>
#include <utility>
#include <vector>

#include <omp.h>

#include "obs/trace.h"
#include "tree/balltree.h"
#include "tree/kdtree.h"
#include "tree/octree.h"
#include "traversal/rules.h"
#include "util/common.h"
#include "util/threading.h"
#include "util/timer.h"

namespace portal {

/// Child enumeration adapters so one traversal serves kd-trees and octrees.
inline int tree_children(const KdTree& tree, index_t node, index_t out[8]) {
  const KdNode& n = tree.node(node);
  if (n.is_leaf()) return 0;
  out[0] = n.left;
  out[1] = n.right;
  return 2;
}

inline int tree_children(const Octree& tree, index_t node, index_t out[8]) {
  const OctreeNode& n = tree.node(node);
  if (n.is_leaf()) return 0;
  int count = 0;
  for (index_t child : n.children)
    if (child >= 0) out[count++] = child;
  return count;
}

inline int tree_children(const BallTree& tree, index_t node, index_t out[8]) {
  const BallNode& n = tree.node(node);
  if (n.is_leaf()) return 0;
  out[0] = n.left;
  out[1] = n.right;
  return 2;
}

inline bool tree_node_is_leaf(const KdTree& tree, index_t node) {
  return tree.node(node).is_leaf();
}
inline bool tree_node_is_leaf(const BallTree& tree, index_t node) {
  return tree.node(node).is_leaf();
}
inline bool tree_node_is_leaf(const Octree& tree, index_t node) {
  return tree.node(node).is_leaf();
}

/// Node width used by SplitPolicy::Larger.
inline real_t tree_node_extent(const KdTree& tree, index_t node) {
  return tree.node(node).box.widest_extent();
}
inline real_t tree_node_extent(const Octree& tree, index_t node) {
  return tree.node(node).half_width * 2;
}
inline real_t tree_node_extent(const BallTree& tree, index_t node) {
  return tree.node(node).box.widest_extent();
}

/// How a visited pair of non-leaf nodes is split (Algorithm 1 line 6-9).
enum class SplitPolicy {
  /// Split every non-leaf node and recurse over the cartesian product --
  /// Algorithm 1 verbatim. Right choice for binary kd-trees (4 subpairs).
  Both,
  /// Split only the wider node. Standard for octrees, where splitting both
  /// sides would fan out into up to 64 subpairs per visit.
  Larger,
};

struct TraversalOptions {
  bool parallel = true;
  /// Recursion depth below which OpenMP tasks are spawned; -1 derives it from
  /// the current thread count via task_spawn_depth().
  int task_depth = -1;
  SplitPolicy split = SplitPolicy::Both;
};

namespace detail {

template <typename TreeQ, typename TreeR, typename Rules>
class DualTraverser {
 public:
  DualTraverser(const TreeQ& qtree, const TreeR& rtree, Rules& rules,
                int task_depth, SplitPolicy split)
      : qtree_(qtree),
        rtree_(rtree),
        rules_(rules),
        task_depth_(task_depth),
        split_(split) {}

  void run_serial(index_t q, index_t r) {
    // Stack-local accumulator: the hot recursion increments memory the
    // compiler can prove nothing else aliases.
    TraversalStats local;
    recurse<false>(q, r, 0, local);
    total_ += local;
  }

  void run_parallel(index_t q, index_t r) {
    // One padded slot per thread: a slot is only ever written by its owning
    // thread (OpenMP tasks are tied, and merge_local runs at most once per
    // task body), so the merges need no synchronization beyond the implicit
    // barrier closing the parallel region.
    thread_stats_.assign(static_cast<std::size_t>(omp_get_max_threads()),
                         PaddedStats{});
#pragma omp parallel
#pragma omp single nowait
    {
      TraversalStats local;
      recurse<true>(q, r, 0, local);
      merge_local(local);
    }
    for (const PaddedStats& slot : thread_stats_) total_ += slot.stats;
    thread_stats_.clear();
  }

  TraversalStats stats() const { return total_; }

 private:
  /// Order reference children nearest-first when the rule set exposes a
  /// score; tightens reduction bounds before farther nodes are examined.
  void order_by_score(index_t q, index_t* children, int count) {
    if constexpr (ScoredDualRuleSet<Rules>) {
      std::array<real_t, 8> score;
      for (int i = 0; i < count; ++i) score[i] = rules_.score(q, children[i]);
      // insertion sort; count <= 8
      for (int i = 1; i < count; ++i)
        for (int j = i; j > 0 && score[j] < score[j - 1]; --j) {
          std::swap(score[j], score[j - 1]);
          std::swap(children[j], children[j - 1]);
        }
    } else {
      (void)q;
      (void)children;
      (void)count;
    }
  }

  /// Cacheline-padded per-thread accumulator so neighboring threads' merges
  /// never share a line (the false-sharing hazard the atomic counters had).
  struct alignas(64) PaddedStats {
    TraversalStats stats;
  };

  /// Fold a finished task's local counters into this thread's slot. Called
  /// once per task, not per node pair.
  void merge_local(const TraversalStats& local) {
    thread_stats_[static_cast<std::size_t>(omp_get_thread_num())].stats += local;
  }

  /// `stats` is the enclosing task's private accumulator: counting is plain
  /// increments on task-local state, zero shared RMWs per visited pair.
  template <bool Par>
  void recurse(index_t q, index_t r, int depth, TraversalStats& stats) {
    ++stats.pairs_visited;
    if (rules_.prune_or_approx(q, r)) {
      ++stats.prunes;
      return;
    }

    const bool q_leaf = tree_node_is_leaf(qtree_, q);
    const bool r_leaf = tree_node_is_leaf(rtree_, r);

    if (q_leaf && r_leaf) {
      ++stats.base_cases;
      rules_.base_case(q, r);
      return;
    }

    index_t q_children[8];
    index_t r_children[8];
    int qn = q_leaf ? 0 : tree_children(qtree_, q, q_children);
    int rn = r_leaf ? 0 : tree_children(rtree_, r, r_children);

    // Larger-side policy: when both could split, keep the narrower node
    // whole and only open the wider one (octree fan-out control).
    if (split_ == SplitPolicy::Larger && qn > 0 && rn > 0) {
      if (tree_node_extent(qtree_, q) >= tree_node_extent(rtree_, r)) {
        rn = 0;
      } else {
        qn = 0;
      }
    }

    if (qn > 0 && rn > 0) {
      // Fork on query children (disjoint query ranges); each task walks all
      // reference children sequentially, nearest-first.
      for (int qi = 0; qi < qn; ++qi) {
        const index_t qc = q_children[qi];
        if constexpr (Par) {
          if (depth < task_depth_) {
            // firstprivate keeps the task self-contained: libgomp's task
            // synchronization is futex-based and invisible to TSan, so a
            // default(shared) read of the parent's stack here reports as a
            // phantom race. Each task sorts its own private children copy.
#pragma omp task default(shared) firstprivate(qc, depth, rn, r_children)
            {
              TraversalStats task_stats;
              order_by_score(qc, r_children, rn);
              for (int ri = 0; ri < rn; ++ri)
                recurse<Par>(qc, r_children[ri], depth + 1, task_stats);
              merge_local(task_stats);
            }
            continue;
          }
        }
        index_t ordered[8];
        for (int i = 0; i < rn; ++i) ordered[i] = r_children[i];
        order_by_score(qc, ordered, rn);
        for (int ri = 0; ri < rn; ++ri)
          recurse<Par>(qc, ordered[ri], depth + 1, stats);
      }
      if constexpr (Par) {
        if (depth < task_depth_) {
#pragma omp taskwait
        }
      }
    } else if (qn > 0) {
      // Reference is a leaf: fork on query children.
      for (int qi = 0; qi < qn; ++qi) {
        const index_t qc = q_children[qi];
        if constexpr (Par) {
          if (depth < task_depth_) {
#pragma omp task default(shared) firstprivate(qc, r, depth)
            {
              TraversalStats task_stats;
              recurse<Par>(qc, r, depth + 1, task_stats);
              merge_local(task_stats);
            }
            continue;
          }
        }
        recurse<Par>(qc, r, depth + 1, stats);
      }
      if constexpr (Par) {
        if (depth < task_depth_) {
#pragma omp taskwait
        }
      }
    } else {
      // Query is a leaf: both reference children share its output range, so
      // they run sequentially in this task, nearest-first.
      order_by_score(q, r_children, rn);
      for (int ri = 0; ri < rn; ++ri)
        recurse<Par>(q, r_children[ri], depth + 1, stats);
    }
  }

  const TreeQ& qtree_;
  const TreeR& rtree_;
  Rules& rules_;
  int task_depth_;
  SplitPolicy split_;
  TraversalStats total_;
  std::vector<PaddedStats> thread_stats_;
};

} // namespace detail

/// Run Algorithm 1 for m = 2 over (qtree, rtree) with the given rule set.
/// The returned stats carry exact counters (merged from per-task locals; no
/// shared atomics are involved) plus the traversal wall-clock in
/// `elapsed_seconds`, which together with the tree stats' `build_seconds`
/// gives callers the build vs. traverse split.
template <typename TreeQ, typename TreeR, typename Rules>
  requires DualRuleSet<Rules>
TraversalStats dual_traverse(const TreeQ& qtree, const TreeR& rtree, Rules& rules,
                             const TraversalOptions& options = {}) {
  PORTAL_OBS_SCOPE(traverse_scope, "traversal/dual");
  Timer timer;
  detail::DualTraverser<TreeQ, TreeR, Rules> traverser(
      qtree, rtree, rules,
      options.task_depth >= 0 ? options.task_depth
                              : task_spawn_depth(num_threads()),
      options.split);
  if (options.parallel && num_threads() > 1) {
    traverser.run_parallel(qtree.root_index(), rtree.root_index());
  } else {
    traverser.run_serial(qtree.root_index(), rtree.root_index());
  }
  TraversalStats stats = traverser.stats();
  stats.elapsed_seconds = timer.elapsed_s();
  // Unify the task-merged stats with the session counters: one bulk add per
  // traversal, so the per-pair hot path stays untouched.
  PORTAL_OBS_COUNT("traversal/pairs_visited", stats.pairs_visited);
  PORTAL_OBS_COUNT("traversal/prunes", stats.prunes);
  PORTAL_OBS_COUNT("traversal/base_cases", stats.base_cases);
  return stats;
}

/// General m-way rule set: same contract as DualRuleSet but over node tuples.
template <typename R>
concept MultiRuleSet = requires(R r, const std::vector<index_t>& nodes) {
  { r.prune_or_approx(nodes) } -> std::convertible_to<bool>;
  { r.base_case(nodes) };
};

/// Algorithm 1 verbatim for m trees (lines 6-11: split every non-leaf node
/// and recurse over the PowerSet-Tuples cartesian product). Serial; the
/// evaluated problems are all m = 2 and use dual_traverse instead.
template <typename Tree, typename Rules>
  requires MultiRuleSet<Rules>
TraversalStats multi_traverse(const std::vector<const Tree*>& trees, Rules& rules) {
  PORTAL_OBS_SCOPE(traverse_scope, "traversal/multi");
  Timer timer;
  TraversalStats stats;
  std::vector<index_t> nodes(trees.size());
  for (std::size_t i = 0; i < trees.size(); ++i) nodes[i] = trees[i]->root_index();

  struct Frame {
    std::vector<index_t> nodes;
  };
  std::vector<Frame> stack;
  stack.push_back({nodes});

  std::vector<std::vector<index_t>> splits(trees.size());
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    ++stats.pairs_visited;

    if (rules.prune_or_approx(frame.nodes)) {
      ++stats.prunes;
      continue;
    }

    bool all_leaves = true;
    for (std::size_t i = 0; i < trees.size(); ++i)
      if (!tree_node_is_leaf(*trees[i], frame.nodes[i])) all_leaves = false;

    if (all_leaves) {
      ++stats.base_cases;
      rules.base_case(frame.nodes);
      continue;
    }

    // N_i^split = {N_i} when leaf else {left, right, ...} (Algorithm 1 line 7-8).
    for (std::size_t i = 0; i < trees.size(); ++i) {
      splits[i].clear();
      index_t children[8];
      const int count = tree_children(*trees[i], frame.nodes[i], children);
      if (count == 0) {
        splits[i].push_back(frame.nodes[i]);
      } else {
        splits[i].assign(children, children + count);
      }
    }

    // Cartesian product (PowerSet-Tuples, line 9).
    std::vector<std::size_t> cursor(trees.size(), 0);
    while (true) {
      Frame next;
      next.nodes.resize(trees.size());
      for (std::size_t i = 0; i < trees.size(); ++i)
        next.nodes[i] = splits[i][cursor[i]];
      stack.push_back(std::move(next));

      std::size_t i = 0;
      while (i < trees.size() && ++cursor[i] == splits[i].size()) {
        cursor[i] = 0;
        ++i;
      }
      if (i == trees.size()) break;
    }
  }
  stats.elapsed_seconds = timer.elapsed_s();
  PORTAL_OBS_COUNT("traversal/pairs_visited", stats.pairs_visited);
  PORTAL_OBS_COUNT("traversal/prunes", stats.prunes);
  PORTAL_OBS_COUNT("traversal/base_cases", stats.base_cases);
  return stats;
}

} // namespace portal
