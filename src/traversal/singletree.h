// Portal -- single-tree traversal: one query entity descends one tree.
//
// The multi-tree traversal (Algorithm 1) is the paper's contribution; the
// single-tree descent is the classic alternative that library baselines use
// (scikit-learn's per-point radius queries, FDPS's per-particle Barnes-Hut
// walk). Having it as a first-class module keeps the Table V comparators
// honest and reviewable, and gives downstream users the per-query flavor when
// queries arrive online rather than in batch.
#pragma once

#include <concepts>

#include "traversal/multitree.h"
#include "traversal/rules.h"
#include "util/common.h"

namespace portal {

/// Rule set for one descent: `prune_or_take(node)` returns true when the
/// subtree is fully handled (pruned as irrelevant OR consumed in bulk, e.g. a
/// Barnes-Hut cell acceptance); `base_case(node)` evaluates a leaf exactly.
template <typename R>
concept SingleRuleSet = requires(R r, index_t node) {
  { r.prune_or_take(node) } -> std::convertible_to<bool>;
  { r.base_case(node) };
};

/// Optional nearest-first child ordering, exactly as in the dual traversal.
template <typename R>
concept ScoredSingleRuleSet = SingleRuleSet<R> && requires(R r, index_t node) {
  { r.score(node) } -> std::convertible_to<real_t>;
};

/// Depth-first descent from the root. Serial: callers parallelize over
/// queries (the natural axis for single-tree work), so the stats counters
/// are plain increments on the caller's stack. `elapsed_seconds` is left 0
/// here -- a per-query clock read would dominate small descents; callers
/// time whole query batches instead.
template <typename Tree, typename Rules>
  requires SingleRuleSet<Rules>
TraversalStats single_traverse(const Tree& tree, Rules& rules) {
  TraversalStats stats;
  // Explicit stack: single-tree descents can be deep and run per query, so
  // recursion overhead and stack depth both matter.
  // Worst case: (tree height) x (fan-out - 1) pending siblings; the octree
  // depth cap of 60 with 8-way nodes bounds this at ~512.
  index_t stack[512];
  int top = 0;
  stack[top++] = tree.root_index();

  index_t children[8];
  while (top > 0) {
    const index_t node = stack[--top];
    ++stats.pairs_visited;
    if (rules.prune_or_take(node)) {
      ++stats.prunes;
      continue;
    }
    if (tree_node_is_leaf(tree, node)) {
      ++stats.base_cases;
      rules.base_case(node);
      continue;
    }
    const int count = tree_children(tree, node, children);
    if constexpr (ScoredSingleRuleSet<Rules>) {
      // Nearest-first: push farthest first so the nearest pops first.
      real_t score[8];
      for (int i = 0; i < count; ++i) score[i] = rules.score(children[i]);
      for (int i = 1; i < count; ++i)
        for (int j = i; j > 0 && score[j] < score[j - 1]; --j) {
          std::swap(score[j], score[j - 1]);
          std::swap(children[j], children[j - 1]);
        }
      for (int i = count - 1; i >= 0; --i) stack[top++] = children[i];
    } else {
      // Preorder left-first: push the last child first so child 0 pops
      // first. Unscored descents therefore visit leaves in ascending
      // permuted order -- load-bearing for the serving engine's bitwise
      // SUM determinism contract (src/serve/engine.h).
      for (int i = count - 1; i >= 0; --i) stack[top++] = children[i];
    }
  }
  // One bulk merge into the session counters per descent; single-tree
  // descents run per query, so no per-node instrumentation here.
  PORTAL_OBS_COUNT("traversal/single/nodes_visited", stats.pairs_visited);
  PORTAL_OBS_COUNT("traversal/single/prunes", stats.prunes);
  PORTAL_OBS_COUNT("traversal/single/base_cases", stats.base_cases);
  return stats;
}

/// Multi-query single-tree entry point: run one descent per query index in
/// [0, num_queries) over a shared immutable tree. `make_rules(q)` constructs
/// the q-th query's rule set, so every descent owns all of its mutable state
/// on the caller's stack -- nothing is shared between queries except the
/// tree, which makes this entry point *reentrant*: any number of threads may
/// call it (or single_traverse) concurrently on the same tree. This is the
/// traversal core of the serving runtime's micro-batches (src/serve): a
/// worker coalesces same-plan requests and answers them with one
/// for_each_query sweep over the current snapshot.
///
/// `parallel` splits the queries across OpenMP threads (batch mode);
/// serving workers pass false and parallelize across batches instead.
/// Returns the summed stats over all descents either way.
template <typename Tree, typename MakeRules>
TraversalStats for_each_query(const Tree& tree, index_t num_queries,
                              MakeRules&& make_rules, bool parallel = false) {
  TraversalStats total;
  if (parallel) {
    index_t pairs = 0, prunes = 0, bases = 0;
#pragma omp parallel for schedule(dynamic, 8) \
    reduction(+ : pairs, prunes, bases)
    for (index_t q = 0; q < num_queries; ++q) {
      auto rules = make_rules(q);
      const TraversalStats s = single_traverse(tree, rules);
      pairs += s.pairs_visited;
      prunes += s.prunes;
      bases += s.base_cases;
    }
    total.pairs_visited = pairs;
    total.prunes = prunes;
    total.base_cases = bases;
  } else {
    for (index_t q = 0; q < num_queries; ++q) {
      auto rules = make_rules(q);
      const TraversalStats s = single_traverse(tree, rules);
      total.pairs_visited += s.pairs_visited;
      total.prunes += s.prunes;
      total.base_cases += s.base_cases;
    }
  }
  return total;
}

} // namespace portal
