// Portal -- single-tree traversal: one query entity descends one tree.
//
// The multi-tree traversal (Algorithm 1) is the paper's contribution; the
// single-tree descent is the classic alternative that library baselines use
// (scikit-learn's per-point radius queries, FDPS's per-particle Barnes-Hut
// walk). Having it as a first-class module keeps the Table V comparators
// honest and reviewable, and gives downstream users the per-query flavor when
// queries arrive online rather than in batch.
#pragma once

#include "traversal/cursor.h"
#include "traversal/multitree.h"
#include "traversal/rules.h"
#include "util/common.h"

namespace portal {

/// Depth-first descent from the root. Serial: callers parallelize over
/// queries (the natural axis for single-tree work), so the stats counters
/// are plain increments on the caller's stack. `elapsed_seconds` is left 0
/// here -- a per-query clock read would dominate small descents; callers
/// time whole query batches instead.
///
/// This run-to-completion form is the bitwise oracle for the resumable
/// TraversalCursor (traversal/cursor.h): both share push_ordered_children,
/// so they visit nodes and evaluate leaves in the same order by
/// construction.
template <typename Tree, typename Rules>
  requires SingleRuleSet<Rules>
TraversalStats single_traverse(const Tree& tree, Rules& rules) {
  TraversalStats stats;
  // Explicit stack: single-tree descents can be deep and run per query, so
  // recursion overhead and stack depth both matter. NodeFrontier's inline
  // buffer covers every in-tree builder's worst case (binary median splits
  // stay shallow; the depth-60 octree needs ~428 slots) and grows onto the
  // heap for anything deeper -- the previous fixed 512-entry array could be
  // silently overflowed by a degenerate depth-uncapped tree.
  NodeFrontier frontier;
  frontier.push(tree.root_index());

  index_t children[8];
  while (!frontier.empty()) {
    const index_t node = frontier.pop();
    ++stats.pairs_visited;
    if (rules.prune_or_take(node)) {
      ++stats.prunes;
      continue;
    }
    if (tree_node_is_leaf(tree, node)) {
      ++stats.base_cases;
      rules.base_case(node);
      continue;
    }
    const int count = tree_children(tree, node, children);
    push_ordered_children(rules, children, count, frontier);
  }
  // One bulk merge into the session counters per descent; single-tree
  // descents run per query, so no per-node instrumentation here.
  PORTAL_OBS_COUNT("traversal/single/nodes_visited", stats.pairs_visited);
  PORTAL_OBS_COUNT("traversal/single/prunes", stats.prunes);
  PORTAL_OBS_COUNT("traversal/single/base_cases", stats.base_cases);
  return stats;
}

/// Multi-query single-tree entry point: run one descent per query index in
/// [0, num_queries) over a shared immutable tree. `make_rules(q)` constructs
/// the q-th query's rule set, so every descent owns all of its mutable state
/// on the caller's stack -- nothing is shared between queries except the
/// tree, which makes this entry point *reentrant*: any number of threads may
/// call it (or single_traverse) concurrently on the same tree. This is the
/// traversal core of the serving runtime's micro-batches (src/serve): a
/// worker coalesces same-plan requests and answers them with one
/// for_each_query sweep over the current snapshot.
///
/// `parallel` splits the queries across OpenMP threads (batch mode);
/// serving workers pass false and parallelize across batches instead.
/// Returns the summed stats over all descents either way.
template <typename Tree, typename MakeRules>
TraversalStats for_each_query(const Tree& tree, index_t num_queries,
                              MakeRules&& make_rules, bool parallel = false) {
  TraversalStats total;
  if (parallel) {
    index_t pairs = 0, prunes = 0, bases = 0;
#pragma omp parallel for schedule(dynamic, 8) \
    reduction(+ : pairs, prunes, bases)
    for (index_t q = 0; q < num_queries; ++q) {
      auto rules = make_rules(q);
      const TraversalStats s = single_traverse(tree, rules);
      pairs += s.pairs_visited;
      prunes += s.prunes;
      bases += s.base_cases;
    }
    total.pairs_visited = pairs;
    total.prunes = prunes;
    total.base_cases = bases;
  } else {
    for (index_t q = 0; q < num_queries; ++q) {
      auto rules = make_rules(q);
      const TraversalStats s = single_traverse(tree, rules);
      total.pairs_visited += s.pairs_visited;
      total.prunes += s.prunes;
      total.base_cases += s.base_cases;
    }
  }
  return total;
}

} // namespace portal
