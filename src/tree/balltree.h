// Portal -- ball tree: an alternative space-partitioning tree (paper Sec. II:
// PASCAL "abstracts the tree type which gives us the freedom to plug and
// play with different trees").
//
// Nodes are bounded by balls (centroid + covering radius) instead of
// hyper-rectangles; balls stay tight in high dimensions where boxes become
// vacuous. BallBound implements the same bound interface the rule sets use
// on BBox, and BallTree the same structural interface as KdTree, so the
// multi-tree traversal and the dual-tree problem kernels instantiate for
// either tree unchanged.
#pragma once

#include <utility>
#include <vector>

#include "data/dataset.h"
#include "kernels/metrics.h"
#include "tree/bbox.h"
#include "tree/kdtree.h" // kDefaultLeafSize
#include "tree/soa_mirror.h"
#include "util/common.h"

namespace portal {

/// Bounding ball with the BBox-compatible bound interface.
class BallBound {
 public:
  BallBound() = default;
  BallBound(std::vector<real_t> center, real_t radius)
      : center_(std::move(center)), radius_(radius) {}

  index_t dim() const { return static_cast<index_t>(center_.size()); }
  real_t radius() const { return radius_; }
  real_t center(index_t d) const { return center_[d]; }
  void center_point(real_t* out) const {
    for (index_t d = 0; d < dim(); ++d) out[d] = center_[d];
  }
  /// Ball diameter (the analog of BBox::widest_extent, used by the
  /// larger-side split policy and approximation heuristics).
  real_t widest_extent() const { return 2 * radius_; }

  // -- L2 bounds (squared), exact for balls ----------------------------------
  real_t min_sq_dist(const BallBound& other) const;
  real_t max_sq_dist(const BallBound& other) const;
  real_t min_sq_dist_point(const real_t* p, index_t stride = 1) const;
  real_t max_sq_dist_point(const real_t* p, index_t stride = 1) const;

  /// Metric-generic bounds in the metric's natural space. L2 family exact;
  /// L1/Linf conservative through norm equivalence (prune-safe); Mahalanobis
  /// through the extreme eigenvalues of Sigma^{-1}.
  real_t min_dist(MetricKind kind, const BallBound& other,
                  const MahalanobisContext* ctx = nullptr) const;
  real_t max_dist(MetricKind kind, const BallBound& other,
                  const MahalanobisContext* ctx = nullptr) const;

 private:
  real_t center_sq_dist(const BallBound& other) const;

  std::vector<real_t> center_;
  real_t radius_ = 0;
};

struct BallNode {
  index_t begin = 0;
  index_t end = 0;
  index_t left = -1;
  index_t right = -1;
  index_t parent = -1;
  index_t depth = 0;
  BallBound box; // named `box` so rule sets template across node types

  bool is_leaf() const { return left < 0; }
  index_t count() const { return end - begin; }
};

struct BallTreeStats {
  index_t num_nodes = 0;
  index_t num_leaves = 0;
  index_t height = 0;
  index_t max_leaf_count = 0;
  double build_seconds = 0;
};

/// Median-split ball tree: recursion splits at the median of the widest
/// spread dimension (the same partitioning as the kd-tree, so comparisons
/// isolate the *bound geometry*), but each node is covered by the tight ball
/// around its centroid. The build mirrors the kd-tree's: task-parallel
/// divide-and-conquer into a pre-sized preorder node array (deterministic --
/// parallel and serial builds produce identical trees), with each node's
/// covering radius, child spread boxes, and child coordinate sums all
/// gathered in one sweep of the freshly partitioned range.
class BallTree {
 public:
  /// `parallel_build` enables the OpenMP-task build; the resulting tree is
  /// identical either way (see KdTree).
  explicit BallTree(const Dataset& data, index_t leaf_size = kDefaultLeafSize,
                    bool parallel_build = true);

  const Dataset& data() const { return data_; }
  /// SoA mirror of data() for the batched base cases (tree/soa_mirror.h).
  const SoaMirror& mirror() const { return mirror_; }
  const std::vector<index_t>& perm() const { return perm_; }
  const std::vector<index_t>& inverse_perm() const { return inv_perm_; }
  index_t leaf_size() const { return leaf_size_; }

  const BallNode& node(index_t i) const { return nodes_[i]; }
  const BallNode& root() const { return nodes_[0]; }
  index_t root_index() const { return 0; }
  index_t num_nodes() const { return static_cast<index_t>(nodes_.size()); }
  const BallTreeStats& stats() const { return stats_; }

 private:
  /// Fill node `node_index` from its precomputed per-dimension `spread`
  /// (tight bbox, drives the split choice) and coordinate `sum` (centroid
  /// numerator), then split and recurse -- as OpenMP tasks above
  /// `task_depth`. One sweep after nth_element computes the node's covering
  /// radius plus both children's spread/sum, so no node rescans its points.
  void build_node(index_t node_index, index_t begin, index_t end, index_t depth,
                  index_t parent, BBox spread, std::vector<real_t> sum,
                  int task_depth);

  // Build-time inputs; members so build tasks reach them through `this`
  // (parent stack frames may unwind before a task runs). The scratch holds
  // (split key, index) pairs so selection runs over contiguous memory; tasks
  // share it because they own disjoint [begin, end) ranges.
  const Dataset* build_input_ = nullptr;
  std::vector<index_t>* build_order_ = nullptr;
  std::vector<std::pair<real_t, index_t>>* build_scratch_ = nullptr;

  Dataset data_;
  SoaMirror mirror_;
  std::vector<index_t> perm_;
  std::vector<index_t> inv_perm_;
  std::vector<BallNode> nodes_;
  index_t leaf_size_ = kDefaultLeafSize;
  BallTreeStats stats_;
};

} // namespace portal
