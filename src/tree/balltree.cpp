#include "tree/balltree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/timer.h"

namespace portal {

real_t BallBound::center_sq_dist(const BallBound& other) const {
  real_t total = 0;
  for (index_t d = 0; d < dim(); ++d) {
    const real_t diff = center_[d] - other.center_[d];
    total += diff * diff;
  }
  return total;
}

real_t BallBound::min_sq_dist(const BallBound& other) const {
  const real_t centers = std::sqrt(center_sq_dist(other));
  const real_t gap = std::max(real_t(0), centers - radius_ - other.radius_);
  return gap * gap;
}

real_t BallBound::max_sq_dist(const BallBound& other) const {
  const real_t far = std::sqrt(center_sq_dist(other)) + radius_ + other.radius_;
  return far * far;
}

real_t BallBound::min_sq_dist_point(const real_t* p, index_t stride) const {
  real_t sq = 0;
  for (index_t d = 0; d < dim(); ++d) {
    const real_t diff = p[d * stride] - center_[d];
    sq += diff * diff;
  }
  const real_t gap = std::max(real_t(0), std::sqrt(sq) - radius_);
  return gap * gap;
}

real_t BallBound::max_sq_dist_point(const real_t* p, index_t stride) const {
  real_t sq = 0;
  for (index_t d = 0; d < dim(); ++d) {
    const real_t diff = p[d * stride] - center_[d];
    sq += diff * diff;
  }
  const real_t far = std::sqrt(sq) + radius_;
  return far * far;
}

real_t BallBound::min_dist(MetricKind kind, const BallBound& other,
                           const MahalanobisContext* ctx) const {
  switch (kind) {
    case MetricKind::SqEuclidean:
      return min_sq_dist(other);
    case MetricKind::Euclidean:
      return std::sqrt(min_sq_dist(other));
    case MetricKind::Manhattan:
    case MetricKind::Chebyshev:
      // Norm equivalence: d_L1 >= d_L2 and d_Linf >= d_L2 / dim; both give a
      // conservative (prune-safe) lower bound from the exact L2 ball bound.
      if (kind == MetricKind::Manhattan) return std::sqrt(min_sq_dist(other));
      return std::sqrt(min_sq_dist(other) /
                       static_cast<real_t>(std::max<index_t>(dim(), 1)));
    case MetricKind::Mahalanobis:
      if (ctx == nullptr)
        throw std::invalid_argument("BallBound::min_dist: Mahalanobis needs ctx");
      return ctx->eig_min() * min_sq_dist(other);
  }
  throw std::logic_error("BallBound::min_dist: unhandled metric");
}

real_t BallBound::max_dist(MetricKind kind, const BallBound& other,
                           const MahalanobisContext* ctx) const {
  switch (kind) {
    case MetricKind::SqEuclidean:
      return max_sq_dist(other);
    case MetricKind::Euclidean:
      return std::sqrt(max_sq_dist(other));
    case MetricKind::Manhattan:
      // d_L1 <= sqrt(dim) * d_L2: conservative upper bound.
      return std::sqrt(max_sq_dist(other) * static_cast<real_t>(dim()));
    case MetricKind::Chebyshev:
      // d_Linf <= d_L2.
      return std::sqrt(max_sq_dist(other));
    case MetricKind::Mahalanobis:
      if (ctx == nullptr)
        throw std::invalid_argument("BallBound::max_dist: Mahalanobis needs ctx");
      return ctx->eig_max() * max_sq_dist(other);
  }
  throw std::logic_error("BallBound::max_dist: unhandled metric");
}

BallTree::BallTree(const Dataset& data, index_t leaf_size) : leaf_size_(leaf_size) {
  if (leaf_size <= 0) throw std::invalid_argument("BallTree: leaf_size must be > 0");
  if (data.dim() <= 0) throw std::invalid_argument("BallTree: empty dimensionality");
  Timer timer;

  const index_t n = data.size();
  std::vector<index_t> order(n);
  for (index_t i = 0; i < n; ++i) order[i] = i;
  nodes_.reserve(static_cast<std::size_t>(4 * (n / leaf_size + 2)));
  if (n > 0) build_recursive(order, 0, n, 0, -1, data);

  perm_ = std::move(order);
  inv_perm_.resize(n);
  for (index_t i = 0; i < n; ++i) inv_perm_[perm_[i]] = i;

  data_ = Dataset(n, data.dim(), data.layout());
  for (index_t i = 0; i < n; ++i)
    for (index_t d = 0; d < data.dim(); ++d)
      data_.coord(i, d) = data.coord(perm_[i], d);

  stats_.num_nodes = static_cast<index_t>(nodes_.size());
  for (const BallNode& node : nodes_) {
    if (node.is_leaf()) {
      ++stats_.num_leaves;
      stats_.max_leaf_count = std::max(stats_.max_leaf_count, node.count());
    }
    stats_.height = std::max(stats_.height, node.depth);
  }
  stats_.build_seconds = timer.elapsed_s();
}

index_t BallTree::build_recursive(std::vector<index_t>& order, index_t begin,
                                  index_t end, index_t depth, index_t parent,
                                  const Dataset& input) {
  const index_t node_index = static_cast<index_t>(nodes_.size());
  nodes_.emplace_back();
  const index_t dim = input.dim();

  // Centroid + covering radius (the tight ball).
  std::vector<real_t> center(dim, 0);
  for (index_t i = begin; i < end; ++i)
    for (index_t d = 0; d < dim; ++d) center[d] += input.coord(order[i], d);
  for (index_t d = 0; d < dim; ++d)
    center[d] /= static_cast<real_t>(end - begin);
  real_t radius_sq = 0;
  // Also track per-dimension spread for the split choice.
  std::vector<real_t> lo(dim, std::numeric_limits<real_t>::max());
  std::vector<real_t> hi(dim, std::numeric_limits<real_t>::lowest());
  for (index_t i = begin; i < end; ++i) {
    real_t sq = 0;
    for (index_t d = 0; d < dim; ++d) {
      const real_t x = input.coord(order[i], d);
      sq += (x - center[d]) * (x - center[d]);
      lo[d] = std::min(lo[d], x);
      hi[d] = std::max(hi[d], x);
    }
    radius_sq = std::max(radius_sq, sq);
  }

  {
    BallNode& node = nodes_.back();
    node.begin = begin;
    node.end = end;
    node.parent = parent;
    node.depth = depth;
    node.box = BallBound(std::move(center), std::sqrt(radius_sq));
  }

  if (end - begin <= leaf_size_) return node_index;

  index_t split_dim = 0;
  real_t best_spread = hi[0] - lo[0];
  for (index_t d = 1; d < dim; ++d)
    if (hi[d] - lo[d] > best_spread) {
      best_spread = hi[d] - lo[d];
      split_dim = d;
    }
  const index_t mid = begin + (end - begin) / 2;
  std::nth_element(order.begin() + begin, order.begin() + mid, order.begin() + end,
                   [&](index_t a, index_t b) {
                     return input.coord(a, split_dim) < input.coord(b, split_dim);
                   });

  const index_t left = build_recursive(order, begin, mid, depth + 1, node_index, input);
  const index_t right = build_recursive(order, mid, end, depth + 1, node_index, input);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

} // namespace portal
