#include "tree/balltree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"
#include "tree/build.h"
#include "util/threading.h"
#include "util/timer.h"

namespace portal {

real_t BallBound::center_sq_dist(const BallBound& other) const {
  real_t total = 0;
  for (index_t d = 0; d < dim(); ++d) {
    const real_t diff = center_[d] - other.center_[d];
    total += diff * diff;
  }
  return total;
}

real_t BallBound::min_sq_dist(const BallBound& other) const {
  const real_t centers = std::sqrt(center_sq_dist(other));
  const real_t gap = std::max(real_t(0), centers - radius_ - other.radius_);
  return gap * gap;
}

real_t BallBound::max_sq_dist(const BallBound& other) const {
  const real_t far = std::sqrt(center_sq_dist(other)) + radius_ + other.radius_;
  return far * far;
}

real_t BallBound::min_sq_dist_point(const real_t* p, index_t stride) const {
  real_t sq = 0;
  for (index_t d = 0; d < dim(); ++d) {
    const real_t diff = p[d * stride] - center_[d];
    sq += diff * diff;
  }
  const real_t gap = std::max(real_t(0), std::sqrt(sq) - radius_);
  return gap * gap;
}

real_t BallBound::max_sq_dist_point(const real_t* p, index_t stride) const {
  real_t sq = 0;
  for (index_t d = 0; d < dim(); ++d) {
    const real_t diff = p[d * stride] - center_[d];
    sq += diff * diff;
  }
  const real_t far = std::sqrt(sq) + radius_;
  return far * far;
}

real_t BallBound::min_dist(MetricKind kind, const BallBound& other,
                           const MahalanobisContext* ctx) const {
  switch (kind) {
    case MetricKind::SqEuclidean:
      return min_sq_dist(other);
    case MetricKind::Euclidean:
      return std::sqrt(min_sq_dist(other));
    case MetricKind::Manhattan:
    case MetricKind::Chebyshev:
      // Norm equivalence: d_L1 >= d_L2 and d_Linf >= d_L2 / dim; both give a
      // conservative (prune-safe) lower bound from the exact L2 ball bound.
      if (kind == MetricKind::Manhattan) return std::sqrt(min_sq_dist(other));
      return std::sqrt(min_sq_dist(other) /
                       static_cast<real_t>(std::max<index_t>(dim(), 1)));
    case MetricKind::Mahalanobis:
      if (ctx == nullptr)
        throw std::invalid_argument("BallBound::min_dist: Mahalanobis needs ctx");
      return ctx->eig_min() * min_sq_dist(other);
  }
  throw std::logic_error("BallBound::min_dist: unhandled metric");
}

real_t BallBound::max_dist(MetricKind kind, const BallBound& other,
                           const MahalanobisContext* ctx) const {
  switch (kind) {
    case MetricKind::SqEuclidean:
      return max_sq_dist(other);
    case MetricKind::Euclidean:
      return std::sqrt(max_sq_dist(other));
    case MetricKind::Manhattan:
      // d_L1 <= sqrt(dim) * d_L2: conservative upper bound.
      return std::sqrt(max_sq_dist(other) * static_cast<real_t>(dim()));
    case MetricKind::Chebyshev:
      // d_Linf <= d_L2.
      return std::sqrt(max_sq_dist(other));
    case MetricKind::Mahalanobis:
      if (ctx == nullptr)
        throw std::invalid_argument("BallBound::max_dist: Mahalanobis needs ctx");
      return ctx->eig_max() * max_sq_dist(other);
  }
  throw std::logic_error("BallBound::max_dist: unhandled metric");
}

BallTree::BallTree(const Dataset& data, index_t leaf_size, bool parallel_build)
    : leaf_size_(leaf_size) {
  if (leaf_size <= 0) throw std::invalid_argument("BallTree: leaf_size must be > 0");
  if (data.dim() <= 0) throw std::invalid_argument("BallTree: empty dimensionality");
  PORTAL_OBS_SCOPE(build_scope, "tree/ball/build");
  Timer timer;

  const index_t n = data.size();
  const index_t dim = data.dim();
  std::vector<index_t> order(n);
  for (index_t i = 0; i < n; ++i) order[i] = i;

  if (n > 0) {
    nodes_.resize(static_cast<std::size_t>(
        detail::median_subtree_nodes(n, leaf_size)));

    // Root spread + coordinate sums; every other node receives both from
    // its parent's post-split sweep.
    PORTAL_OBS_SCOPE(bounds_scope, "tree/ball/root_bounds");
    BBox root_spread(dim);
    std::vector<real_t> root_sum(dim, 0);
    for (index_t i = 0; i < n; ++i) {
      root_spread.include([&](index_t d) { return data.coord(i, d); });
      for (index_t d = 0; d < dim; ++d) root_sum[d] += data.coord(i, d);
    }
    bounds_scope.stop();

    PORTAL_OBS_SCOPE(partition_scope, "tree/ball/partition");
    std::vector<std::pair<real_t, index_t>> scratch(
        static_cast<std::size_t>(n));
    build_input_ = &data;
    build_order_ = &order;
    build_scratch_ = &scratch;
    const bool use_tasks = parallel_build && !in_parallel_region() &&
                           num_threads() > 1 && n >= 2 * kMinParallelBuildCount;
    if (use_tasks) {
      const int task_depth = task_spawn_depth(num_threads());
#pragma omp parallel
#pragma omp single nowait
      build_node(0, 0, n, 0, -1, std::move(root_spread), std::move(root_sum),
                 task_depth);
    } else {
      build_node(0, 0, n, 0, -1, std::move(root_spread), std::move(root_sum),
                 -1);
    }
    build_input_ = nullptr;
    build_order_ = nullptr;
    build_scratch_ = nullptr;
  }

  PORTAL_OBS_SCOPE(materialize_scope, "tree/ball/materialize");
  perm_ = std::move(order);
  detail::fill_inverse_perm(perm_, inv_perm_, parallel_build);

  data_ = Dataset(n, dim, data.layout());
  detail::materialize_permuted(data, perm_, data_, parallel_build);
  mirror_.build(data_, parallel_build);
  materialize_scope.stop();
  PORTAL_OBS_COUNT("tree/ball/builds", 1);
  PORTAL_OBS_COUNT("tree/ball/points", static_cast<std::uint64_t>(n));

  stats_.num_nodes = static_cast<index_t>(nodes_.size());
  for (const BallNode& node : nodes_) {
    if (node.is_leaf()) {
      ++stats_.num_leaves;
      stats_.max_leaf_count = std::max(stats_.max_leaf_count, node.count());
    }
    stats_.height = std::max(stats_.height, node.depth);
  }
  stats_.build_seconds = timer.elapsed_s();
}

void BallTree::build_node(index_t node_index, index_t begin, index_t end,
                          index_t depth, index_t parent, BBox spread,
                          std::vector<real_t> sum, int task_depth) {
  const Dataset& input = *build_input_;
  std::vector<index_t>& order = *build_order_;
  const index_t dim = input.dim();
  const index_t count = end - begin;

  // Centroid from the inherited sums -- O(dim), no point scan.
  std::vector<real_t> center(std::move(sum));
  for (index_t d = 0; d < dim; ++d) center[d] /= static_cast<real_t>(count);

  {
    BallNode& node = nodes_[static_cast<std::size_t>(node_index)];
    node.begin = begin;
    node.end = end;
    node.parent = parent;
    node.depth = depth;
  }

  if (count <= leaf_size_) {
    // Leaves only need the covering radius: one pass.
    real_t radius_sq = 0;
    for (index_t i = begin; i < end; ++i) {
      const index_t p = order[i];
      real_t sq = 0;
      for (index_t d = 0; d < dim; ++d) {
        const real_t diff = input.coord(p, d) - center[d];
        sq += diff * diff;
      }
      radius_sq = std::max(radius_sq, sq);
    }
    nodes_[node_index].box = BallBound(std::move(center), std::sqrt(radius_sq));
    return;
  }

  // Selection over contiguous (key, index) pairs, exactly as in the kd-tree
  // build: one gather, then sequential comparisons.
  const index_t split_dim = spread.widest_dim();
  const index_t mid = begin + count / 2;
  std::pair<real_t, index_t>* scratch = build_scratch_->data();
  for (index_t i = begin; i < end; ++i) {
    const index_t p = order[i];
    scratch[i] = {input.coord(p, split_dim), p};
  }
  std::nth_element(scratch + begin, scratch + mid, scratch + end,
                   [](const std::pair<real_t, index_t>& a,
                      const std::pair<real_t, index_t>& b) {
                     return a.first < b.first;
                   });

  // One sweep of the freshly partitioned (cache-hot) range writes the order
  // back and gathers this node's covering radius plus both children's
  // spread and coordinate sums.
  constexpr real_t kMax = std::numeric_limits<real_t>::max();
  constexpr real_t kLowest = std::numeric_limits<real_t>::lowest();
  std::vector<real_t> left_lo(dim, kMax), left_hi(dim, kLowest);
  std::vector<real_t> right_lo(dim, kMax), right_hi(dim, kLowest);
  std::vector<real_t> left_sum(dim, 0), right_sum(dim, 0);
  real_t radius_sq = 0;
  for (index_t i = begin; i < end; ++i) {
    const index_t p = scratch[i].second;
    order[i] = p;
    const bool is_left = i < mid;
    real_t* lo = is_left ? left_lo.data() : right_lo.data();
    real_t* hi = is_left ? left_hi.data() : right_hi.data();
    real_t* child_sum = is_left ? left_sum.data() : right_sum.data();
    real_t sq = 0;
    for (index_t d = 0; d < dim; ++d) {
      const real_t x = input.coord(p, d);
      const real_t diff = x - center[d];
      sq += diff * diff;
      if (x < lo[d]) lo[d] = x;
      if (x > hi[d]) hi[d] = x;
      child_sum[d] += x;
    }
    radius_sq = std::max(radius_sq, sq);
  }
  nodes_[node_index].box = BallBound(std::move(center), std::sqrt(radius_sq));

  BBox left_spread(dim);
  left_spread.include_point(left_lo.data());
  left_spread.include_point(left_hi.data());
  BBox right_spread(dim);
  right_spread.include_point(right_lo.data());
  right_spread.include_point(right_hi.data());

  const index_t left = node_index + 1;
  const index_t right =
      left + detail::median_subtree_nodes(mid - begin, leaf_size_);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;

  if (depth < task_depth && count >= 2 * kMinParallelBuildCount) {
#pragma omp task default(shared) firstprivate(left, begin, mid, depth, \
    node_index, left_spread, left_sum, task_depth)
    build_node(left, begin, mid, depth + 1, node_index, std::move(left_spread),
               std::move(left_sum), task_depth);
    build_node(right, mid, end, depth + 1, node_index, std::move(right_spread),
               std::move(right_sum), task_depth);
  } else {
    build_node(left, begin, mid, depth + 1, node_index, std::move(left_spread),
               std::move(left_sum), task_depth);
    build_node(right, mid, end, depth + 1, node_index, std::move(right_spread),
               std::move(right_sum), task_depth);
  }
}

} // namespace portal
