// Portal -- immutable dataset snapshots for the concurrent serving runtime.
//
// The query-serving engine (src/serve) answers requests against a *frozen*
// view of the reference data: a pinned dataset plus the spatial indexes
// built over it. Updates never mutate a live tree -- a writer builds a
// complete replacement snapshot off to the side (copy-rebuild) and then
// publishes it with one pointer swap, so in-flight traversals keep reading
// the epoch they started on and every request's answer is attributable to
// exactly one epoch. This is classic RCU-by-shared_ptr: readers pin a
// snapshot for the duration of a traversal; the last reader of a retired
// epoch frees it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

#include "index/knn_graph.h"
#include "tree/balltree.h"
#include "tree/kdtree.h"
#include "tree/octree.h"

namespace portal {

/// Which indexes a snapshot materializes. The kd-tree is the serving
/// default (every supported query runs on it); ball tree and octree are
/// opt-in for workloads that want them (octree requires 3-D data and is
/// built with unit masses unless the publisher supplies its own). The k-NN
/// graph (index/knn_graph.h) is the opt-in fourth structure for approximate
/// high-dimensional serving; `graph` holds its build knobs.
struct SnapshotOptions {
  index_t leaf_size = kDefaultLeafSize;
  bool build_kd = true;
  bool build_ball = false;
  bool build_octree = false;
  bool build_graph = false;
  KnnGraphOptions graph;
};

/// One immutable epoch: the source dataset (original point order, pinned so
/// external label arrays and identity keys stay valid) plus the trees built
/// over it. All members are set once at build time and never mutated, so a
/// snapshot is safe to read from any number of threads with no locking.
class TreeSnapshot {
 public:
  /// Builds every index requested by `options` over `source`. Heavy -- runs
  /// outside any lock (see SnapshotSlot::publish). Throws if `source` is
  /// null/empty or if build_octree is set on non-3-D data.
  static std::shared_ptr<const TreeSnapshot> build(
      std::shared_ptr<const Dataset> source, std::uint64_t epoch,
      const SnapshotOptions& options);

  std::uint64_t epoch() const { return epoch_; }
  const std::shared_ptr<const Dataset>& source() const { return source_; }
  index_t size() const { return source_->size(); }
  index_t dim() const { return source_->dim(); }

  /// Null when the corresponding SnapshotOptions flag was off.
  const std::shared_ptr<const KdTree>& kd() const { return kd_; }
  const std::shared_ptr<const BallTree>& ball() const { return ball_; }
  const std::shared_ptr<const Octree>& octree() const { return octree_; }
  const std::shared_ptr<const KnnGraph>& graph() const { return graph_; }

 private:
  TreeSnapshot() = default;

  std::uint64_t epoch_ = 0;
  std::shared_ptr<const Dataset> source_;
  std::shared_ptr<const KdTree> kd_;
  std::shared_ptr<const BallTree> ball_;
  std::shared_ptr<const Octree> octree_;
  std::shared_ptr<const KnnGraph> graph_;
};

/// The single mutable cell of the serving data plane: an epoch-versioned
/// pointer to the current TreeSnapshot.
///
/// load() hands out a shared_ptr copy under a short mutex hold -- no tree
/// work ever happens inside the lock, so readers only contend on the
/// pointer copy itself (a few nanoseconds at per-batch granularity). A
/// plain mutex is deliberate over std::atomic<shared_ptr>: it is portable
/// across the toolchains CI exercises and is exactly what ThreadSanitizer
/// models best.
///
/// publish() serializes writers: the replacement snapshot is built with no
/// locks held, then swapped in under the pointer mutex. Epochs are handed
/// out monotonically, and because builders hold `publish_mutex_` from epoch
/// grant to swap, epoch N is never published after N+1 -- readers observe
/// a strictly increasing epoch sequence with no gaps going backward.
class SnapshotSlot {
 public:
  /// Builds the replacement snapshot for a granted epoch. Runs with only the
  /// writer lock held; must return a snapshot carrying exactly that epoch.
  using SnapshotBuilder =
      std::function<std::shared_ptr<const TreeSnapshot>(std::uint64_t epoch)>;

  /// Current snapshot, or null before the first publish. The returned
  /// pointer pins the epoch for as long as the caller holds it.
  ///
  /// Monotone-observation assertion: once any reader has seen epoch N, no
  /// later load() may return an epoch < N. The swap path already guarantees
  /// this, but a stale shared_ptr smuggled back through publish_with (the
  /// TreeCache-style bug this guards against) used to be silently served;
  /// now the retired epoch is caught here and at install time.
  std::shared_ptr<const TreeSnapshot> load() const {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t epoch = current_ ? current_->epoch() : 0;
    if (epoch < max_observed_)
      throw std::logic_error(
          "SnapshotSlot::load: epoch " + std::to_string(epoch) +
          " observed after epoch " + std::to_string(max_observed_) +
          " was already served (retired snapshot republished?)");
    max_observed_ = epoch;
    return current_;
  }

  /// Epoch of the current snapshot (0 = nothing published yet).
  std::uint64_t current_epoch() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return current_ ? current_->epoch() : 0;
  }

  /// Copy-rebuild-swap: build a snapshot of `source` at the next epoch,
  /// then make it current. Returns the published snapshot. Readers holding
  /// the previous epoch are unaffected; its memory is reclaimed when the
  /// last of them drops its pointer.
  std::shared_ptr<const TreeSnapshot> publish(
      std::shared_ptr<const Dataset> source, const SnapshotOptions& options);

  /// Generalized publish: grants the next epoch, runs `build` (with only the
  /// writer lock held -- readers are unaffected), and installs the result.
  /// The delta-merge path uses this to build a snapshot from a gathered
  /// union dataset instead of a caller-supplied one. Throws std::logic_error
  /// -- without installing anything -- if the builder returns null, a
  /// snapshot stamped with a different epoch than the granted one, or an
  /// epoch not strictly above the current one (a retired snapshot resurfacing
  /// through a stale cache must never be re-published).
  std::shared_ptr<const TreeSnapshot> publish_with(const SnapshotBuilder& build);

 private:
  /// Swap-in under mutex_ with the monotonicity assertions. Requires
  /// publish_mutex_ held.
  void install(std::shared_ptr<const TreeSnapshot> snap, std::uint64_t granted);

  mutable std::mutex mutex_;     // guards current_ and max_observed_
  std::mutex publish_mutex_;     // serializes writers across build+swap
  std::uint64_t next_epoch_ = 1; // guarded by publish_mutex_
  std::shared_ptr<const TreeSnapshot> current_;
  /// Highest epoch any reader has observed through load(); lets load()
  /// detect a backward swap the instant it would become visible.
  mutable std::uint64_t max_observed_ = 0;
};

} // namespace portal
