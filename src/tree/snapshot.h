// Portal -- immutable dataset snapshots for the concurrent serving runtime.
//
// The query-serving engine (src/serve) answers requests against a *frozen*
// view of the reference data: a pinned dataset plus the spatial indexes
// built over it. Updates never mutate a live tree -- a writer builds a
// complete replacement snapshot off to the side (copy-rebuild) and then
// publishes it with one pointer swap, so in-flight traversals keep reading
// the epoch they started on and every request's answer is attributable to
// exactly one epoch. This is classic RCU-by-shared_ptr: readers pin a
// snapshot for the duration of a traversal; the last reader of a retired
// epoch frees it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "tree/balltree.h"
#include "tree/kdtree.h"
#include "tree/octree.h"

namespace portal {

/// Which indexes a snapshot materializes. The kd-tree is the serving
/// default (every supported query runs on it); ball tree and octree are
/// opt-in for workloads that want them (octree requires 3-D data and is
/// built with unit masses unless the publisher supplies its own).
struct SnapshotOptions {
  index_t leaf_size = kDefaultLeafSize;
  bool build_kd = true;
  bool build_ball = false;
  bool build_octree = false;
};

/// One immutable epoch: the source dataset (original point order, pinned so
/// external label arrays and identity keys stay valid) plus the trees built
/// over it. All members are set once at build time and never mutated, so a
/// snapshot is safe to read from any number of threads with no locking.
class TreeSnapshot {
 public:
  /// Builds every index requested by `options` over `source`. Heavy -- runs
  /// outside any lock (see SnapshotSlot::publish). Throws if `source` is
  /// null/empty or if build_octree is set on non-3-D data.
  static std::shared_ptr<const TreeSnapshot> build(
      std::shared_ptr<const Dataset> source, std::uint64_t epoch,
      const SnapshotOptions& options);

  std::uint64_t epoch() const { return epoch_; }
  const std::shared_ptr<const Dataset>& source() const { return source_; }
  index_t size() const { return source_->size(); }
  index_t dim() const { return source_->dim(); }

  /// Null when the corresponding SnapshotOptions flag was off.
  const std::shared_ptr<const KdTree>& kd() const { return kd_; }
  const std::shared_ptr<const BallTree>& ball() const { return ball_; }
  const std::shared_ptr<const Octree>& octree() const { return octree_; }

 private:
  TreeSnapshot() = default;

  std::uint64_t epoch_ = 0;
  std::shared_ptr<const Dataset> source_;
  std::shared_ptr<const KdTree> kd_;
  std::shared_ptr<const BallTree> ball_;
  std::shared_ptr<const Octree> octree_;
};

/// The single mutable cell of the serving data plane: an epoch-versioned
/// pointer to the current TreeSnapshot.
///
/// load() hands out a shared_ptr copy under a short mutex hold -- no tree
/// work ever happens inside the lock, so readers only contend on the
/// pointer copy itself (a few nanoseconds at per-batch granularity). A
/// plain mutex is deliberate over std::atomic<shared_ptr>: it is portable
/// across the toolchains CI exercises and is exactly what ThreadSanitizer
/// models best.
///
/// publish() serializes writers: the replacement snapshot is built with no
/// locks held, then swapped in under the pointer mutex. Epochs are handed
/// out monotonically, and because builders hold `publish_mutex_` from epoch
/// grant to swap, epoch N is never published after N+1 -- readers observe
/// a strictly increasing epoch sequence with no gaps going backward.
class SnapshotSlot {
 public:
  /// Current snapshot, or null before the first publish. The returned
  /// pointer pins the epoch for as long as the caller holds it.
  std::shared_ptr<const TreeSnapshot> load() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return current_;
  }

  /// Epoch of the current snapshot (0 = nothing published yet).
  std::uint64_t current_epoch() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return current_ ? current_->epoch() : 0;
  }

  /// Copy-rebuild-swap: build a snapshot of `source` at the next epoch,
  /// then make it current. Returns the published snapshot. Readers holding
  /// the previous epoch are unaffected; its memory is reclaimed when the
  /// last of them drops its pointer.
  std::shared_ptr<const TreeSnapshot> publish(
      std::shared_ptr<const Dataset> source, const SnapshotOptions& options);

 private:
  mutable std::mutex mutex_;     // guards current_ only
  std::mutex publish_mutex_;     // serializes writers across build+swap
  std::uint64_t next_epoch_ = 1; // guarded by publish_mutex_
  std::shared_ptr<const TreeSnapshot> current_;
};

} // namespace portal
