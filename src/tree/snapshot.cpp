#include "tree/snapshot.h"

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace portal {

std::shared_ptr<const TreeSnapshot> TreeSnapshot::build(
    std::shared_ptr<const Dataset> source, std::uint64_t epoch,
    const SnapshotOptions& options) {
  if (!source || source->empty())
    throw std::invalid_argument("TreeSnapshot::build: empty dataset");
  if (options.build_octree && source->dim() != 3)
    throw std::invalid_argument(
        "TreeSnapshot::build: octree snapshots require 3-D data");

  auto snap = std::shared_ptr<TreeSnapshot>(new TreeSnapshot());
  snap->epoch_ = epoch;
  snap->source_ = std::move(source);
  // Each tree copies + permutes the dataset internally, so the builds are
  // independent of each other and of later reads of source_.
  if (options.build_kd)
    snap->kd_ = std::make_shared<const KdTree>(*snap->source_, options.leaf_size);
  if (options.build_ball)
    snap->ball_ =
        std::make_shared<const BallTree>(*snap->source_, options.leaf_size);
  if (options.build_octree) {
    const std::vector<real_t> unit_masses(
        static_cast<std::size_t>(snap->source_->size()), real_t{1});
    snap->octree_ = std::make_shared<const Octree>(*snap->source_, unit_masses,
                                                   options.leaf_size);
  }
  if (options.build_graph)
    snap->graph_ =
        std::make_shared<const KnnGraph>(*snap->source_, options.graph);
  return snap;
}

std::shared_ptr<const TreeSnapshot> SnapshotSlot::publish(
    std::shared_ptr<const Dataset> source, const SnapshotOptions& options) {
  std::lock_guard<std::mutex> writer(publish_mutex_);
  const std::uint64_t epoch = next_epoch_++;
  // The expensive part -- tree construction -- happens with only the writer
  // lock held; readers keep load()ing the previous epoch throughout.
  std::shared_ptr<const TreeSnapshot> snap =
      TreeSnapshot::build(std::move(source), epoch, options);
  install(snap, epoch);
  return snap;
}

std::shared_ptr<const TreeSnapshot> SnapshotSlot::publish_with(
    const SnapshotBuilder& build) {
  std::lock_guard<std::mutex> writer(publish_mutex_);
  const std::uint64_t epoch = next_epoch_++;
  std::shared_ptr<const TreeSnapshot> snap = build(epoch);
  install(std::move(snap), epoch);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    return current_;
  }
}

void SnapshotSlot::install(std::shared_ptr<const TreeSnapshot> snap,
                           std::uint64_t granted) {
  if (!snap)
    throw std::logic_error("SnapshotSlot: builder returned a null snapshot");
  if (snap->epoch() != granted)
    throw std::logic_error(
        "SnapshotSlot: builder returned a snapshot stamped with epoch " +
        std::to_string(snap->epoch()) + ", but epoch " +
        std::to_string(granted) + " was granted (stale snapshot reused?)");
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t cur = current_ ? current_->epoch() : 0;
  if (snap->epoch() <= cur || snap->epoch() < max_observed_)
    throw std::logic_error(
        "SnapshotSlot: publishing epoch " + std::to_string(snap->epoch()) +
        " would move the slot backward (current " + std::to_string(cur) +
        ", max observed " + std::to_string(max_observed_) + ")");
  current_ = std::move(snap);
}

} // namespace portal
