#include "tree/octree.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/trace.h"
#include "tree/build.h"
#include "util/timer.h"

namespace portal {
namespace {

/// Octant index of point p relative to a cell center: bit d set when the
/// point is on the high side of dimension d.
inline int octant_of(const Dataset& input, index_t p, const real_t center[3]) {
  int oct = 0;
  for (int d = 0; d < 3; ++d)
    if (input.coord(p, d) >= center[d]) oct |= (1 << d);
  return oct;
}

} // namespace

Octree::Octree(const Dataset& positions, const std::vector<real_t>& masses,
               index_t leaf_size, bool parallel_build)
    : leaf_size_(leaf_size) {
  if (positions.dim() != 3)
    throw std::invalid_argument("Octree: positions must be 3-D");
  if (static_cast<index_t>(masses.size()) != positions.size())
    throw std::invalid_argument("Octree: masses/positions size mismatch");
  if (leaf_size <= 0) throw std::invalid_argument("Octree: leaf_size must be > 0");
  PORTAL_OBS_SCOPE(build_scope, "tree/octree/build");
  Timer timer;

  const index_t n = positions.size();
  std::vector<index_t> order(n);
  for (index_t i = 0; i < n; ++i) order[i] = i;

  // Root cell: cube enclosing all particles, centered on the data midpoint.
  PORTAL_OBS_SCOPE(bounds_scope, "tree/octree/root_bounds");
  BBox root_box(3);
  for (index_t i = 0; i < n; ++i)
    root_box.include([&](index_t d) { return positions.coord(i, d); });
  bounds_scope.stop();
  real_t center[3];
  real_t half_width = 0;
  for (int d = 0; d < 3; ++d) {
    center[d] = n > 0 ? root_box.center(d) : real_t(0);
    half_width = std::max(half_width, n > 0 ? root_box.extent(d) / 2 : real_t(1));
  }
  // Tiny epsilon so points exactly on the max boundary stay inside.
  half_width = half_width * real_t(1.0000001) + real_t(1e-12);

  PORTAL_OBS_SCOPE(partition_scope, "tree/octree/partition");
  nodes_.reserve(static_cast<std::size_t>(8 * (n / leaf_size + 2)));
  if (n > 0) build_recursive(order, 0, n, center, half_width, 0, positions, masses);
  partition_scope.stop();

  PORTAL_OBS_SCOPE(materialize_scope, "tree/octree/materialize");
  perm_ = std::move(order);
  detail::fill_inverse_perm(perm_, inv_perm_, parallel_build);

  positions_ = Dataset(n, 3, positions.layout());
  detail::materialize_permuted(positions, perm_, positions_, parallel_build);
  masses_.resize(n);
#pragma omp parallel for schedule(static) if (parallel_build && n >= (1 << 15))
  for (index_t i = 0; i < n; ++i) masses_[i] = masses[perm_[i]];
  mirror_.build(positions_, parallel_build);
  materialize_scope.stop();
  PORTAL_OBS_COUNT("tree/octree/builds", 1);
  PORTAL_OBS_COUNT("tree/octree/points", static_cast<std::uint64_t>(n));

  stats_.num_nodes = static_cast<index_t>(nodes_.size());
  for (const OctreeNode& node : nodes_) {
    if (node.is_leaf()) {
      ++stats_.num_leaves;
      stats_.max_leaf_count = std::max(stats_.max_leaf_count, node.count());
    }
  }
  stats_.height = height_;
  stats_.build_seconds = timer.elapsed_s();
}

index_t Octree::build_recursive(std::vector<index_t>& order, index_t begin,
                                index_t end, const real_t center[3],
                                real_t half_width, index_t depth,
                                const Dataset& input,
                                const std::vector<real_t>& input_mass) {
  const index_t node_index = static_cast<index_t>(nodes_.size());
  nodes_.emplace_back();
  height_ = std::max(height_, depth);
  {
    OctreeNode& node = nodes_.back();
    node.begin = begin;
    node.end = end;
    node.depth = depth;
    node.half_width = half_width;
    for (int d = 0; d < 3; ++d) node.center[d] = center[d];
    node.box = BBox(3);
    real_t mass = 0;
    real_t com[3] = {0, 0, 0};
    for (index_t i = begin; i < end; ++i) {
      const index_t p = order[i];
      node.box.include([&](index_t d) { return input.coord(p, d); });
      const real_t m = input_mass[p];
      mass += m;
      for (int d = 0; d < 3; ++d) com[d] += m * input.coord(p, d);
    }
    node.mass = mass;
    for (int d = 0; d < 3; ++d)
      node.com[d] = mass > 0 ? com[d] / mass : center[d];
  }

  // Depth cap guards against coincident particles that can never separate.
  if (end - begin <= leaf_size_ || depth >= 60) return node_index;

  // Partition [begin, end) into the 8 octants with a counting pass followed
  // by a stable copy (order matters: children stay contiguous).
  index_t counts[8] = {0};
  for (index_t i = begin; i < end; ++i)
    ++counts[octant_of(input, order[i], center)];

  index_t offsets[8];
  index_t running = begin;
  for (int o = 0; o < 8; ++o) {
    offsets[o] = running;
    running += counts[o];
  }

  std::vector<index_t> scratch(order.begin() + begin, order.begin() + end);
  index_t cursor[8];
  std::copy(offsets, offsets + 8, cursor);
  for (index_t p : scratch) order[cursor[octant_of(input, p, center)]++] = p;

  OctreeNode& node = nodes_[node_index];
  node.leaf = false;
  const real_t child_half = half_width / 2;
  for (int o = 0; o < 8; ++o) {
    if (counts[o] == 0) continue;
    real_t child_center[3];
    for (int d = 0; d < 3; ++d)
      child_center[d] = center[d] + ((o >> d) & 1 ? child_half : -child_half);
    const index_t child = build_recursive(order, offsets[o], offsets[o] + counts[o],
                                          child_center, child_half, depth + 1,
                                          input, input_mass);
    nodes_[node_index].children[o] = child;
  }
  return node_index;
}

} // namespace portal
