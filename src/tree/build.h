// Portal -- helpers shared by the space-partitioning tree builders.
//
// The kd-tree and ball tree both split at the positional median, so the
// shape of the node array (preorder: node, left subtree, right subtree) is a
// pure function of (point count, leaf size). `median_subtree_nodes` exposes
// that function, which is what lets the task-parallel builds pre-size the
// node array and write every node into a slot whose index is known before
// any child is built -- the parallel build is bit-for-bit identical to the
// serial one. The permuted-dataset materialization and inverse-permutation
// fill are the other two O(n) passes every tree constructor runs; they are
// embarrassingly parallel and shared here.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "util/common.h"

namespace portal::detail {

/// Node count of the median-split subtree over `count` points: the recursion
/// puts floor(count/2) points left and the rest right until a range fits in
/// a leaf. Cost is O(subtree nodes), trivial next to the partition work.
inline index_t median_subtree_nodes(index_t count, index_t leaf_size) {
  if (count <= leaf_size) return 1;
  const index_t left = count / 2;
  return 1 + median_subtree_nodes(left, leaf_size) +
         median_subtree_nodes(count - left, leaf_size);
}

/// out[i] <- input[perm[i]] for every coordinate; `out` must already have
/// input's shape. Parallel over points when `parallel` is set (each point is
/// written by exactly one iteration, so the loop is race-free).
inline void materialize_permuted(const Dataset& input,
                                 const std::vector<index_t>& perm, Dataset& out,
                                 bool parallel) {
  const index_t n = input.size();
  const index_t dim = input.dim();
#pragma omp parallel for schedule(static) if (parallel && n >= (1 << 15))
  for (index_t i = 0; i < n; ++i)
    for (index_t d = 0; d < dim; ++d) out.coord(i, d) = input.coord(perm[i], d);
}

/// inv[perm[i]] <- i. perm is a permutation, so the writes are disjoint and
/// the parallel loop is race-free.
inline void fill_inverse_perm(const std::vector<index_t>& perm,
                              std::vector<index_t>& inv, bool parallel) {
  const index_t n = static_cast<index_t>(perm.size());
  inv.resize(static_cast<std::size_t>(n));
#pragma omp parallel for schedule(static) if (parallel && n >= (1 << 15))
  for (index_t i = 0; i < n; ++i) inv[perm[i]] = i;
}

} // namespace portal::detail
