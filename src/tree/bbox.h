// Portal -- axis-aligned bounding boxes (hyper-rectangles).
//
// Sec. II-A of the paper: bounding-box metadata lets the traversal compute
// node-to-node and node-to-point distance bounds *without touching points*,
// which is what makes Prune/Approximate cheap. All L2 bounds are returned
// squared; Mahalanobis bounds are derived from the L2 ones via extreme
// eigenvalues of Sigma^{-1} (conservative, hence prune-safe).
#pragma once

#include <limits>
#include <vector>

#include "kernels/metrics.h"
#include "util/common.h"

namespace portal {

class BBox {
 public:
  BBox() = default;
  explicit BBox(index_t dim)
      : lo_(dim, std::numeric_limits<real_t>::max()),
        hi_(dim, std::numeric_limits<real_t>::lowest()) {}

  index_t dim() const { return static_cast<index_t>(lo_.size()); }

  real_t lo(index_t d) const { return lo_[d]; }
  real_t hi(index_t d) const { return hi_[d]; }
  real_t center(index_t d) const { return (lo_[d] + hi_[d]) / 2; }
  real_t extent(index_t d) const { return hi_[d] - lo_[d]; }

  /// Grow to include a point given by a coordinate accessor.
  template <typename CoordFn>
  void include(CoordFn&& coord) {
    for (index_t d = 0; d < dim(); ++d) {
      const real_t x = coord(d);
      if (x < lo_[d]) lo_[d] = x;
      if (x > hi_[d]) hi_[d] = x;
    }
  }

  void include_point(const real_t* p) {
    include([p](index_t d) { return p[d]; });
  }

  /// Index of the widest dimension (ties -> lowest index).
  index_t widest_dim() const;

  /// Span of the widest dimension (the paper's N^diameter).
  real_t widest_extent() const;

  /// Squared L2 diagonal length (max distance between two points inside).
  real_t sq_diagonal() const;

  /// Copy the center point into out[0..dim).
  void center_point(real_t* out) const;

  bool contains(const real_t* p) const;

  // -- L2 bounds (squared) ---------------------------------------------------
  real_t min_sq_dist(const BBox& other) const;
  real_t max_sq_dist(const BBox& other) const;
  real_t min_sq_dist_point(const real_t* p, index_t stride = 1) const;
  real_t max_sq_dist_point(const real_t* p, index_t stride = 1) const;

  // -- L1 / Linf bounds ------------------------------------------------------
  real_t min_dist_l1(const BBox& other) const;
  real_t max_dist_l1(const BBox& other) const;
  real_t min_dist_linf(const BBox& other) const;
  real_t max_dist_linf(const BBox& other) const;

  /// Metric-generic node-to-node bounds in the metric's natural space
  /// (squared for SqEuclidean/Mahalanobis, plain distance otherwise).
  real_t min_dist(MetricKind kind, const BBox& other,
                  const MahalanobisContext* ctx = nullptr) const;
  real_t max_dist(MetricKind kind, const BBox& other,
                  const MahalanobisContext* ctx = nullptr) const;

 private:
  std::vector<real_t> lo_;
  std::vector<real_t> hi_;
};

} // namespace portal
