#include "tree/delta.h"

#include <cassert>
#include <stdexcept>

namespace portal {

DeltaTree::DeltaTree(index_t dim, index_t capacity, index_t main_size)
    : capacity_(capacity),
      main_size_(main_size),
      points_(capacity, dim),
      insert_seq_(static_cast<std::size_t>(capacity), 0),
      kill_seq_(static_cast<std::size_t>(capacity)),
      main_kill_seq_(static_cast<std::size_t>(main_size)) {
  if (dim <= 0 || capacity <= 0 || main_size < 0)
    throw std::invalid_argument("DeltaTree: non-positive dim/capacity");
  log_.reserve(static_cast<std::size_t>(capacity));
}

index_t DeltaTree::append(const real_t* point, std::uint64_t seq) {
  if (count_ >= capacity_) return -1;
  const index_t slot = count_;
  for (index_t d = 0; d < points_.dim(); ++d)
    points_.coord(slot, d) = point[d];
  insert_seq_[static_cast<std::size_t>(slot)] = seq;
  log_.push_back({seq, MutationKind::Insert, slot});
  // count_ itself only becomes reader-visible through a LiveView pinned
  // under the owner's mutex, which orders the coordinate writes above.
  ++count_;
  return slot;
}

void DeltaTree::kill_slot(index_t slot, std::uint64_t seq) {
  assert(slot >= 0 && slot < count_);
  assert(kill_seq_[static_cast<std::size_t>(slot)].load(
             std::memory_order_relaxed) == 0);
  kill_seq_[static_cast<std::size_t>(slot)].store(seq,
                                                  std::memory_order_relaxed);
  log_.push_back({seq, MutationKind::RemoveDelta, slot});
}

void DeltaTree::kill_main(index_t permuted_index, std::uint64_t seq) {
  assert(permuted_index >= 0 && permuted_index < main_size_);
  assert(main_kill_seq_[static_cast<std::size_t>(permuted_index)].load(
             std::memory_order_relaxed) == 0);
  main_kill_seq_[static_cast<std::size_t>(permuted_index)].store(
      seq, std::memory_order_relaxed);
  main_kill_count_.fetch_add(1, std::memory_order_relaxed);
  log_.push_back({seq, MutationKind::RemoveMain, permuted_index});
}

void DeltaTree::copy_main_kills(const DeltaTree& from) {
  assert(main_size_ == from.main_size_);
  std::uint64_t copied = 0;
  for (index_t i = 0; i < main_size_; ++i) {
    const std::uint64_t k = from.main_kill_seq_[static_cast<std::size_t>(i)]
                                .load(std::memory_order_relaxed);
    if (k == 0) continue;
    main_kill_seq_[static_cast<std::size_t>(i)].store(
        k, std::memory_order_relaxed);
    ++copied;
  }
  main_kill_count_.fetch_add(copied, std::memory_order_relaxed);
}

index_t LiveView::live_size() const {
  index_t n = snapshot ? snapshot->size() : 0;
  if (!delta) return n;
  if (filter_main) {
    n = 0;
    for (index_t i = 0; i < snapshot->size(); ++i)
      n += main_visible(i) ? 1 : 0;
  }
  for (index_t s = 0; s < delta_count; ++s)
    n += delta->slot_dead(s, watermark) ? 0 : 1;
  return n;
}

} // namespace portal
