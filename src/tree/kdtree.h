// Portal -- kd-tree (paper Sec. II-A).
//
// Binary space-partitioning tree built by *median split along the widest
// bounding-box dimension* (the strategy used for both Portal and the expert
// baseline in Sec. V-B). Every node stores a tight bounding box; boxes are
// computed in a single pass per split -- the partition sweep that follows
// nth_element fills both child boxes while the range is cache-hot, so no
// node ever rescans its points on entry. Construction is task-parallel
// (divide-and-conquer over subranges, like pbbsbench's tree builds) yet
// bit-for-bit deterministic: node indices are preorder positions computed
// from subtree sizes alone, so the parallel build produces exactly the
// serial tree. Construction permutes a copy of the dataset so each leaf
// owns a contiguous coordinate range -- the base-case kernels then stream
// cache-line-aligned memory.
#pragma once

#include <utility>
#include <vector>

#include "data/dataset.h"
#include "tree/bbox.h"
#include "tree/soa_mirror.h"
#include "util/common.h"

namespace portal {

struct KdNode {
  index_t begin = 0;  // first point (in permuted order)
  index_t end = 0;    // one past last point
  index_t left = -1;  // child node index, -1 for leaf
  index_t right = -1;
  index_t parent = -1;
  index_t depth = 0;
  BBox box;

  bool is_leaf() const { return left < 0; }
  index_t count() const { return end - begin; }
};

struct KdTreeStats {
  index_t num_nodes = 0;
  index_t num_leaves = 0;
  index_t height = 0;
  index_t max_leaf_count = 0;
  double build_seconds = 0;
};

/// Default leaf size; Table IV notes leaf size is tuned per problem, the
/// benches sweep it, and 32 is the all-round sweet spot on this machine.
inline constexpr index_t kDefaultLeafSize = 32;

class KdTree {
 public:
  /// Builds the tree over a copy of `data`, preserving data's layout.
  /// `leaf_size` is the paper's q: leaves hold at most q points (q > 0).
  /// `parallel_build` enables the OpenMP-task divide-and-conquer build; the
  /// resulting tree (nodes, boxes, permutation) is identical either way, so
  /// the flag only exists for benchmarking and the determinism tests.
  explicit KdTree(const Dataset& data, index_t leaf_size = kDefaultLeafSize,
                  bool parallel_build = true);

  /// The permuted dataset: node [begin, end) ranges index into this.
  const Dataset& data() const { return data_; }

  /// SoA mirror of data() for the batched base cases: leaf ranges are
  /// contiguous lane runs (tree/soa_mirror.h).
  const SoaMirror& mirror() const { return mirror_; }

  /// new index -> original index (data().point(i) was input point perm()[i]).
  const std::vector<index_t>& perm() const { return perm_; }

  /// original index -> new index.
  const std::vector<index_t>& inverse_perm() const { return inv_perm_; }

  index_t leaf_size() const { return leaf_size_; }

  const KdNode& node(index_t i) const { return nodes_[i]; }
  const KdNode& root() const { return nodes_[0]; }
  index_t root_index() const { return 0; }
  index_t num_nodes() const { return static_cast<index_t>(nodes_.size()); }

  const KdTreeStats& stats() const { return stats_; }

  /// Visit every leaf node index (in left-to-right order).
  template <typename Fn>
  void for_each_leaf(Fn&& fn) const {
    for (index_t i = 0; i < num_nodes(); ++i)
      if (nodes_[i].is_leaf()) fn(i);
  }

 private:
  /// Fill node `node_index` (begin/end/depth/parent and its precomputed
  /// `box`), then split and recurse. Children's preorder indices follow from
  /// subtree sizes, and both child boxes are computed in one sweep right
  /// after the split, so recursive calls -- possibly OpenMP tasks when
  /// `depth < task_depth` -- write disjoint, pre-sized state.
  void build_node(index_t node_index, index_t begin, index_t end, index_t depth,
                  index_t parent, BBox box, int task_depth);

  // Build-time inputs, only valid while the constructor runs; members so
  // build tasks reach them through `this` instead of stack frames that may
  // unwind before a task executes. `build_scratch_` holds (split-dim key,
  // point index) pairs so nth_element runs over contiguous memory instead of
  // gathering coordinates through the order array on every comparison; tasks
  // share it safely because each works a disjoint [begin, end) range.
  const Dataset* build_input_ = nullptr;
  std::vector<index_t>* build_order_ = nullptr;
  std::vector<std::pair<real_t, index_t>>* build_scratch_ = nullptr;

  Dataset data_;
  SoaMirror mirror_;
  std::vector<index_t> perm_;
  std::vector<index_t> inv_perm_;
  std::vector<KdNode> nodes_;
  index_t leaf_size_ = kDefaultLeafSize;
  KdTreeStats stats_;
};

} // namespace portal
