#include "tree/kdtree.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"
#include "tree/build.h"
#include "util/threading.h"
#include "util/timer.h"

namespace portal {

KdTree::KdTree(const Dataset& data, index_t leaf_size, bool parallel_build)
    : leaf_size_(leaf_size) {
  if (leaf_size <= 0) throw std::invalid_argument("KdTree: leaf_size must be > 0");
  if (data.dim() <= 0) throw std::invalid_argument("KdTree: empty dimensionality");
  PORTAL_OBS_SCOPE(build_scope, "tree/kd/build");
  Timer timer;

  const index_t n = data.size();
  std::vector<index_t> order(n);
  for (index_t i = 0; i < n; ++i) order[i] = i;

  if (n > 0) {
    // Exact node count from the split arithmetic: every build_node call
    // writes into a pre-sized slot, no reallocation, no synchronization.
    nodes_.resize(static_cast<std::size_t>(
        detail::median_subtree_nodes(n, leaf_size)));

    // The root is the only node whose box needs a dedicated scan; every
    // other node receives its box from the parent's post-split sweep.
    PORTAL_OBS_SCOPE(bounds_scope, "tree/kd/root_bounds");
    BBox root_box(data.dim());
    for (index_t i = 0; i < n; ++i)
      root_box.include([&](index_t d) { return data.coord(i, d); });
    bounds_scope.stop();

    PORTAL_OBS_SCOPE(partition_scope, "tree/kd/partition");
    std::vector<std::pair<real_t, index_t>> scratch(
        static_cast<std::size_t>(n));
    build_input_ = &data;
    build_order_ = &order;
    build_scratch_ = &scratch;
    const bool use_tasks = parallel_build && !in_parallel_region() &&
                           num_threads() > 1 && n >= 2 * kMinParallelBuildCount;
    if (use_tasks) {
      const int task_depth = task_spawn_depth(num_threads());
#pragma omp parallel
#pragma omp single nowait
      build_node(0, 0, n, 0, -1, std::move(root_box), task_depth);
      // The implicit barrier closing the parallel region joins all build
      // tasks; no taskwait is needed inside the recursion.
    } else {
      build_node(0, 0, n, 0, -1, std::move(root_box), -1);
    }
    build_input_ = nullptr;
    build_order_ = nullptr;
    build_scratch_ = nullptr;
  }

  PORTAL_OBS_SCOPE(materialize_scope, "tree/kd/materialize");
  perm_ = std::move(order);
  detail::fill_inverse_perm(perm_, inv_perm_, parallel_build);

  // Materialize the permuted dataset (leaf ranges contiguous).
  data_ = Dataset(n, data.dim(), data.layout());
  detail::materialize_permuted(data, perm_, data_, parallel_build);
  mirror_.build(data_, parallel_build);
  materialize_scope.stop();
  PORTAL_OBS_COUNT("tree/kd/builds", 1);
  PORTAL_OBS_COUNT("tree/kd/points", static_cast<std::uint64_t>(n));

  stats_.num_nodes = static_cast<index_t>(nodes_.size());
  for (const KdNode& node : nodes_) {
    if (node.is_leaf()) {
      ++stats_.num_leaves;
      stats_.max_leaf_count = std::max(stats_.max_leaf_count, node.count());
    }
    stats_.height = std::max(stats_.height, node.depth);
  }
  stats_.build_seconds = timer.elapsed_s();
}

void KdTree::build_node(index_t node_index, index_t begin, index_t end,
                        index_t depth, index_t parent, BBox box,
                        int task_depth) {
  const Dataset& input = *build_input_;
  std::vector<index_t>& order = *build_order_;
  {
    KdNode& node = nodes_[static_cast<std::size_t>(node_index)];
    node.begin = begin;
    node.end = end;
    node.parent = parent;
    node.depth = depth;
    node.box = std::move(box);
  }

  const index_t count = end - begin;
  if (count <= leaf_size_) return;

  // Median split along the widest bounding-box dimension (Sec. V-B).
  // Selection runs over contiguous (key, index) pairs in the shared scratch
  // (disjoint [begin, end) ranges across tasks): one gather extracts the
  // split keys, then every nth_element comparison is a sequential load
  // instead of two random gathers through the order array.
  const index_t split_dim = nodes_[node_index].box.widest_dim();
  const index_t mid = begin + count / 2;
  std::pair<real_t, index_t>* scratch = build_scratch_->data();
  for (index_t i = begin; i < end; ++i) {
    const index_t p = order[i];
    scratch[i] = {input.coord(p, split_dim), p};
  }
  std::nth_element(scratch + begin, scratch + mid, scratch + end,
                   [](const std::pair<real_t, index_t>& a,
                      const std::pair<real_t, index_t>& b) {
                     return a.first < b.first;
                   });

  // Degenerate case: all coordinates equal along every dimension (duplicate
  // points). nth_element still provides a positional split, which keeps the
  // recursion terminating since mid > begin and mid < end for count > 1.

  // Single pass over the freshly partitioned (cache-hot) range writes the
  // order back and fills both child boxes -- children never rescan their
  // points on entry.
  BBox left_box(input.dim());
  BBox right_box(input.dim());
  for (index_t i = begin; i < mid; ++i) {
    const index_t p = scratch[i].second;
    order[i] = p;
    left_box.include([&](index_t d) { return input.coord(p, d); });
  }
  for (index_t i = mid; i < end; ++i) {
    const index_t p = scratch[i].second;
    order[i] = p;
    right_box.include([&](index_t d) { return input.coord(p, d); });
  }

  // Preorder child indices from subtree sizes alone: identical whether the
  // subtrees are built inline, by this thread later, or by another thread.
  const index_t left = node_index + 1;
  const index_t right =
      left + detail::median_subtree_nodes(mid - begin, leaf_size_);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;

  if (depth < task_depth && count >= 2 * kMinParallelBuildCount) {
    // The left half becomes a task; firstprivate deep-copies the child box
    // before this frame can unwind. The right half continues inline.
#pragma omp task default(shared) \
    firstprivate(left, begin, mid, depth, node_index, left_box, task_depth)
    build_node(left, begin, mid, depth + 1, node_index, std::move(left_box),
               task_depth);
    build_node(right, mid, end, depth + 1, node_index, std::move(right_box),
               task_depth);
  } else {
    build_node(left, begin, mid, depth + 1, node_index, std::move(left_box),
               task_depth);
    build_node(right, mid, end, depth + 1, node_index, std::move(right_box),
               task_depth);
  }
}

} // namespace portal
