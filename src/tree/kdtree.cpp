#include "tree/kdtree.h"

#include <algorithm>
#include <stdexcept>

#include "util/timer.h"

namespace portal {

KdTree::KdTree(const Dataset& data, index_t leaf_size) : leaf_size_(leaf_size) {
  if (leaf_size <= 0) throw std::invalid_argument("KdTree: leaf_size must be > 0");
  if (data.dim() <= 0) throw std::invalid_argument("KdTree: empty dimensionality");
  Timer timer;

  const index_t n = data.size();
  std::vector<index_t> order(n);
  for (index_t i = 0; i < n; ++i) order[i] = i;

  // Median splits at most double the leaf count going up; reserve generously
  // so build_recursive never reallocates mid-recursion (indices stay valid,
  // but reallocation would cost time).
  nodes_.reserve(static_cast<std::size_t>(4 * (n / leaf_size + 2)));
  if (n > 0) build_recursive(order, 0, n, 0, -1, data);

  perm_ = std::move(order);
  inv_perm_.resize(n);
  for (index_t i = 0; i < n; ++i) inv_perm_[perm_[i]] = i;

  // Materialize the permuted dataset (leaf ranges contiguous).
  data_ = Dataset(n, data.dim(), data.layout());
  for (index_t i = 0; i < n; ++i)
    for (index_t d = 0; d < data.dim(); ++d)
      data_.coord(i, d) = data.coord(perm_[i], d);

  stats_.num_nodes = static_cast<index_t>(nodes_.size());
  for (const KdNode& node : nodes_) {
    if (node.is_leaf()) {
      ++stats_.num_leaves;
      stats_.max_leaf_count = std::max(stats_.max_leaf_count, node.count());
    }
    stats_.height = std::max(stats_.height, node.depth);
  }
  stats_.build_seconds = timer.elapsed_s();
}

index_t KdTree::build_recursive(std::vector<index_t>& order, index_t begin,
                                index_t end, index_t depth, index_t parent,
                                const Dataset& input) {
  const index_t node_index = static_cast<index_t>(nodes_.size());
  nodes_.emplace_back();
  {
    KdNode& node = nodes_.back();
    node.begin = begin;
    node.end = end;
    node.parent = parent;
    node.depth = depth;
    node.box = BBox(input.dim());
    for (index_t i = begin; i < end; ++i) {
      const index_t p = order[i];
      node.box.include([&](index_t d) { return input.coord(p, d); });
    }
  }

  if (end - begin <= leaf_size_) return node_index;

  // Median split along the widest bounding-box dimension (Sec. V-B).
  const index_t split_dim = nodes_[node_index].box.widest_dim();
  const index_t mid = begin + (end - begin) / 2;
  std::nth_element(order.begin() + begin, order.begin() + mid, order.begin() + end,
                   [&](index_t a, index_t b) {
                     return input.coord(a, split_dim) < input.coord(b, split_dim);
                   });

  // Degenerate case: all coordinates equal along every dimension (duplicate
  // points). nth_element still provides a positional split, which keeps the
  // recursion terminating since mid > begin and mid < end for count > 1.
  const index_t left = build_recursive(order, begin, mid, depth + 1, node_index, input);
  const index_t right = build_recursive(order, mid, end, depth + 1, node_index, input);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

} // namespace portal
