// Portal -- the mutable side of the incremental-ingestion data plane
// (DESIGN.md Sec. 16, docs/SERVING.md).
//
// A DeltaTree is the small, flat, bounded structure that absorbs live writes
// next to the immutable main TreeSnapshot: inserts append into a
// preallocated point store, removals are tombstones (a kill sequence number
// per delta slot, and one per *permuted main index* so removals of points
// that live in the main tree filter out of traversals without touching the
// tree). Every mutation is stamped by the owner's monotone mutation clock
// and recorded in an append-only log; a pinned (snapshot, delta, watermark)
// triple -- a LiveView -- therefore names an exact point-set: main points
// whose kill seq is 0 or > watermark, plus delta slots appended at seq <=
// watermark and not killed at seq <= watermark.
//
// Concurrency contract (the event-driven decoupling of Dekate et al., PAPERS
// "Improving the scalability of parallel N-body applications"): all mutation
// entry points are serialized by the owning LiveStore's mutex -- the delta
// itself carries no lock. Readers never take a lock either: a reader's
// pinned delta_count was read under that mutex (so every slot below it was
// fully written happens-before the pin), slots are immutable once appended,
// and kill seqs are per-slot atomics written at most once (0 -> seq). A kill
// racing a pinned reader necessarily carries a seq above the reader's
// watermark, so whether the reader observes the store or not, its visibility
// decision is unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "tree/snapshot.h"

namespace portal {

/// Flat bounded delta structure: one generation of live mutations between
/// two main-tree epochs. Created fresh by each merge; old generations stay
/// valid for readers that pinned them (all their visible state is immutable
/// at the reader's watermark).
class DeltaTree {
 public:
  enum class MutationKind : std::uint8_t {
    Insert,      // index = delta slot appended
    RemoveDelta, // index = delta slot tombstoned
    RemoveMain,  // index = *permuted* main-tree index tombstoned
  };

  /// One append-only log entry; the merge replays entries with seq above its
  /// cut watermark into the successor generation, preserving seqs.
  struct Mutation {
    std::uint64_t seq = 0;
    MutationKind kind = MutationKind::Insert;
    index_t index = -1;
  };

  /// `main_size` is the point count of the TreeSnapshot this generation
  /// rides next to (sizes the main-tombstone array, permuted indexing).
  DeltaTree(index_t dim, index_t capacity, index_t main_size);
  DeltaTree(const DeltaTree&) = delete;
  DeltaTree& operator=(const DeltaTree&) = delete;

  index_t dim() const { return points_.dim(); }
  index_t capacity() const { return capacity_; }
  index_t main_size() const { return main_size_; }

  // --- writer side: every call below must be serialized by the owning
  // --- LiveStore's mutex (the delta carries no lock of its own).

  /// Append a point at `seq`. Returns the slot, or -1 when full (the caller
  /// merges and retries). Coordinates are fully written before the caller
  /// makes the new count visible to readers.
  index_t append(const real_t* point, std::uint64_t seq);

  /// Tombstone a live delta slot / a live permuted main index. A slot or
  /// index is killed at most once per generation (re-inserting the same
  /// coordinates appends a fresh slot).
  void kill_slot(index_t slot, std::uint64_t seq);
  void kill_main(index_t permuted_index, std::uint64_t seq);

  /// Wholesale main-tombstone copy for compaction (the successor generation
  /// keeps the same main tree, so kill state carries over verbatim,
  /// preserving seqs and without re-logging).
  void copy_main_kills(const DeltaTree& from);

  /// Appended slot count. Writer-side only: readers must use the
  /// delta_count pinned into their LiveView instead.
  index_t count() const { return count_; }
  const std::vector<Mutation>& log() const { return log_; }

  // --- reader side: safe from any thread against a pinned watermark.

  /// The slot store: a capacity-sized Dataset (paper layout policy), slots
  /// [0, pinned count) hold immutable points.
  const Dataset& points() const { return points_; }
  void copy_point(index_t slot, real_t* out) const {
    points_.copy_point(slot, out);
  }
  std::uint64_t insert_seq(index_t slot) const {
    return insert_seq_[static_cast<std::size_t>(slot)];
  }

  /// Was this delta slot / permuted main index removed at or before the
  /// watermark? (kill seq 0 = alive.)
  bool slot_dead(index_t slot, std::uint64_t watermark) const {
    const std::uint64_t k =
        kill_seq_[static_cast<std::size_t>(slot)].load(std::memory_order_relaxed);
    return k != 0 && k <= watermark;
  }
  bool main_dead(index_t permuted_index, std::uint64_t watermark) const {
    const std::uint64_t k = main_kill_seq_[static_cast<std::size_t>(permuted_index)]
                                .load(std::memory_order_relaxed);
    return k != 0 && k <= watermark;
  }

  /// Total main tombstones ever applied to this generation. Zero lets the
  /// query engine skip per-point filtering entirely (the common
  /// insert-mostly case pays nothing for removals it never made).
  std::uint64_t main_kill_count() const {
    return main_kill_count_.load(std::memory_order_relaxed);
  }

 private:
  index_t capacity_ = 0;
  index_t main_size_ = 0;
  index_t count_ = 0; // writer-side; readers pin a count via LiveView
  Dataset points_;    // preallocated capacity x dim slot store
  std::vector<std::uint64_t> insert_seq_;           // immutable once visible
  std::vector<std::atomic<std::uint64_t>> kill_seq_;      // 0 = alive
  std::vector<std::atomic<std::uint64_t>> main_kill_seq_; // permuted index
  std::atomic<std::uint64_t> main_kill_count_{0};
  std::vector<Mutation> log_;
};

/// A pinned, fully consistent read view of the live data plane: one main
/// snapshot epoch, one delta generation, and the mutation-clock watermark at
/// pin time. The (epoch, watermark) pair names the exact visible point-set;
/// every query answered through a view is attributable -- and replayable
/// bitwise -- against it. Copied out under the LiveStore mutex, so the pair
/// can never be torn across a merge publish.
struct LiveView {
  std::shared_ptr<const TreeSnapshot> snapshot;
  std::shared_ptr<const DeltaTree> delta; // null on snapshot-only views
  std::uint64_t watermark = 0;
  index_t delta_count = 0;  // visible slots are [0, delta_count)
  bool filter_main = false; // any main tombstone exists in this generation

  std::uint64_t epoch() const { return snapshot ? snapshot->epoch() : 0; }

  /// Visibility of one delta slot / one permuted main index at this view.
  bool slot_visible(index_t slot) const {
    return slot < delta_count && !delta->slot_dead(slot, watermark);
  }
  bool main_visible(index_t permuted_index) const {
    return !filter_main || !delta->main_dead(permuted_index, watermark);
  }

  /// Exact visible point count (main survivors + live delta slots).
  index_t live_size() const;
};

} // namespace portal
