#include "tree/bbox.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace portal {
namespace {

/// Per-dimension gap between [alo, ahi] and [blo, bhi]; zero when overlapping.
inline real_t interval_gap(real_t alo, real_t ahi, real_t blo, real_t bhi) {
  if (alo > bhi) return alo - bhi;
  if (blo > ahi) return blo - ahi;
  return 0;
}

/// Per-dimension farthest separation between the two intervals.
inline real_t interval_span(real_t alo, real_t ahi, real_t blo, real_t bhi) {
  return std::max(ahi - blo, bhi - alo);
}

} // namespace

index_t BBox::widest_dim() const {
  index_t best = 0;
  real_t best_extent = extent(0);
  for (index_t d = 1; d < dim(); ++d) {
    if (extent(d) > best_extent) {
      best_extent = extent(d);
      best = d;
    }
  }
  return best;
}

real_t BBox::widest_extent() const {
  real_t best = 0;
  for (index_t d = 0; d < dim(); ++d) best = std::max(best, extent(d));
  return best;
}

real_t BBox::sq_diagonal() const {
  real_t total = 0;
  for (index_t d = 0; d < dim(); ++d) total += extent(d) * extent(d);
  return total;
}

void BBox::center_point(real_t* out) const {
  for (index_t d = 0; d < dim(); ++d) out[d] = center(d);
}

bool BBox::contains(const real_t* p) const {
  for (index_t d = 0; d < dim(); ++d)
    if (p[d] < lo_[d] || p[d] > hi_[d]) return false;
  return true;
}

real_t BBox::min_sq_dist(const BBox& other) const {
  real_t total = 0;
  for (index_t d = 0; d < dim(); ++d) {
    const real_t gap = interval_gap(lo_[d], hi_[d], other.lo_[d], other.hi_[d]);
    total += gap * gap;
  }
  return total;
}

real_t BBox::max_sq_dist(const BBox& other) const {
  real_t total = 0;
  for (index_t d = 0; d < dim(); ++d) {
    const real_t span = interval_span(lo_[d], hi_[d], other.lo_[d], other.hi_[d]);
    total += span * span;
  }
  return total;
}

real_t BBox::min_sq_dist_point(const real_t* p, index_t stride) const {
  real_t total = 0;
  for (index_t d = 0; d < dim(); ++d) {
    const real_t x = p[d * stride];
    real_t gap = 0;
    if (x < lo_[d]) gap = lo_[d] - x;
    else if (x > hi_[d]) gap = x - hi_[d];
    total += gap * gap;
  }
  return total;
}

real_t BBox::max_sq_dist_point(const real_t* p, index_t stride) const {
  real_t total = 0;
  for (index_t d = 0; d < dim(); ++d) {
    const real_t x = p[d * stride];
    const real_t far = std::max(std::abs(x - lo_[d]), std::abs(x - hi_[d]));
    total += far * far;
  }
  return total;
}

real_t BBox::min_dist_l1(const BBox& other) const {
  real_t total = 0;
  for (index_t d = 0; d < dim(); ++d)
    total += interval_gap(lo_[d], hi_[d], other.lo_[d], other.hi_[d]);
  return total;
}

real_t BBox::max_dist_l1(const BBox& other) const {
  real_t total = 0;
  for (index_t d = 0; d < dim(); ++d)
    total += interval_span(lo_[d], hi_[d], other.lo_[d], other.hi_[d]);
  return total;
}

real_t BBox::min_dist_linf(const BBox& other) const {
  real_t best = 0;
  for (index_t d = 0; d < dim(); ++d)
    best = std::max(best, interval_gap(lo_[d], hi_[d], other.lo_[d], other.hi_[d]));
  return best;
}

real_t BBox::max_dist_linf(const BBox& other) const {
  real_t best = 0;
  for (index_t d = 0; d < dim(); ++d)
    best = std::max(best, interval_span(lo_[d], hi_[d], other.lo_[d], other.hi_[d]));
  return best;
}

real_t BBox::min_dist(MetricKind kind, const BBox& other,
                      const MahalanobisContext* ctx) const {
  switch (kind) {
    case MetricKind::SqEuclidean: return min_sq_dist(other);
    case MetricKind::Euclidean: return std::sqrt(min_sq_dist(other));
    case MetricKind::Manhattan: return min_dist_l1(other);
    case MetricKind::Chebyshev: return min_dist_linf(other);
    case MetricKind::Mahalanobis:
      if (ctx == nullptr)
        throw std::invalid_argument("BBox::min_dist: Mahalanobis needs context");
      // maha^2(x, y) >= lambda_min(Sigma^{-1}) * ||x - y||^2.
      return ctx->eig_min() * min_sq_dist(other);
  }
  throw std::logic_error("BBox::min_dist: unhandled metric");
}

real_t BBox::max_dist(MetricKind kind, const BBox& other,
                      const MahalanobisContext* ctx) const {
  switch (kind) {
    case MetricKind::SqEuclidean: return max_sq_dist(other);
    case MetricKind::Euclidean: return std::sqrt(max_sq_dist(other));
    case MetricKind::Manhattan: return max_dist_l1(other);
    case MetricKind::Chebyshev: return max_dist_linf(other);
    case MetricKind::Mahalanobis:
      if (ctx == nullptr)
        throw std::invalid_argument("BBox::max_dist: Mahalanobis needs context");
      return ctx->eig_max() * max_sq_dist(other);
  }
  throw std::logic_error("BBox::max_dist: unhandled metric");
}

} // namespace portal
