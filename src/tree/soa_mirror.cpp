#include "tree/soa_mirror.h"

#include <cstring>

#include "obs/trace.h"
#include "util/threading.h"

namespace portal {

void SoaMirror::build(const Dataset& data, bool parallel) {
  PORTAL_OBS_SCOPE(mirror_scope, "tree/soa_mirror");
  size_ = data.size();
  dim_ = data.dim();
  // Round the slice length up to a full cache line of reals so every
  // dimension lane starts 64-byte aligned (the buffer itself is aligned).
  constexpr index_t lane_reals =
      static_cast<index_t>(kCacheLineBytes / sizeof(real_t));
  stride_ = (size_ + lane_reals - 1) / lane_reals * lane_reals;
  lanes_.allocate(static_cast<std::size_t>(dim_) * stride_);
  if (size_ == 0) return;

  real_t* out = lanes_.data();
  const bool use_threads = parallel && !in_parallel_region() && num_threads() > 1;
#pragma omp parallel for schedule(static) if (use_threads)
  for (index_t d = 0; d < dim_; ++d) {
    real_t* slice = out + d * stride_;
    if (data.layout() == Layout::ColMajor) {
      std::memcpy(slice, data.col_ptr(d),
                  static_cast<std::size_t>(size_) * sizeof(real_t));
    } else {
      for (index_t i = 0; i < size_; ++i) slice[i] = data.coord(i, d);
    }
  }
  PORTAL_OBS_COUNT("tree/soa_mirror/points", static_cast<std::uint64_t>(size_));
}

} // namespace portal
