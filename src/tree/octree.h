// Portal -- octree for 3-D particle problems (Barnes-Hut, paper Sec. II-A).
//
// Cubic cells recursively subdivided into 8 octants until at most
// `leaf_size` particles remain. Each node carries the Barnes-Hut metadata:
// total mass, center of mass, and the cell side length used by the
// multipole-acceptance criterion s/d < theta. Particles (and their masses)
// are permuted so leaves own contiguous ranges, like the kd-tree.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "tree/bbox.h"
#include "tree/soa_mirror.h"
#include "util/common.h"

namespace portal {

struct OctreeNode {
  index_t begin = 0;
  index_t end = 0;
  index_t children[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
  index_t depth = 0;
  real_t center[3] = {0, 0, 0};     // geometric cell center
  real_t half_width = 0;            // half the cell side length
  real_t com[3] = {0, 0, 0};        // center of mass
  real_t mass = 0;
  bool leaf = true;
  BBox box;                         // tight box, for dual-tree bounds

  bool is_leaf() const { return leaf; }
  index_t count() const { return end - begin; }
  real_t side() const { return 2 * half_width; }
};

/// Structural summary plus build timing, mirroring KdTreeStats/BallTreeStats
/// so benches report the build vs. traverse split uniformly across trees.
struct OctreeStats {
  index_t num_nodes = 0;
  index_t num_leaves = 0;
  index_t height = 0;
  index_t max_leaf_count = 0;
  double build_seconds = 0;
};

class Octree {
 public:
  /// positions must be 3-D; masses.size() must equal positions.size().
  /// The octant recursion itself is serial (cell subdivision is already
  /// cheap next to the kd-tree's median selection); `parallel_build` only
  /// parallelizes the permuted positions/masses materialization.
  Octree(const Dataset& positions, const std::vector<real_t>& masses,
         index_t leaf_size = 16, bool parallel_build = true);

  const Dataset& positions() const { return positions_; }
  /// SoA mirror of positions() for the batched base cases (tree/soa_mirror.h).
  const SoaMirror& mirror() const { return mirror_; }
  const std::vector<real_t>& masses() const { return masses_; }
  const std::vector<index_t>& perm() const { return perm_; }
  const std::vector<index_t>& inverse_perm() const { return inv_perm_; }

  const OctreeNode& node(index_t i) const { return nodes_[i]; }
  index_t root_index() const { return 0; }
  index_t num_nodes() const { return static_cast<index_t>(nodes_.size()); }
  index_t height() const { return height_; }
  const OctreeStats& stats() const { return stats_; }

 private:
  index_t build_recursive(std::vector<index_t>& order, index_t begin, index_t end,
                          const real_t center[3], real_t half_width, index_t depth,
                          const Dataset& input, const std::vector<real_t>& input_mass);

  Dataset positions_;
  SoaMirror mirror_;
  std::vector<real_t> masses_;
  std::vector<index_t> perm_;
  std::vector<index_t> inv_perm_;
  std::vector<OctreeNode> nodes_;
  index_t leaf_size_ = 16;
  index_t height_ = 0;
  OctreeStats stats_;
};

} // namespace portal
