// Portal -- SoA leaf mirror for batched base cases (paper Sec. IV-F).
//
// The trees permute their dataset so every leaf owns a contiguous
// [begin, end) range. Mirroring that permuted dataset once into
// dimension-major lanes -- each dimension a 64-byte-aligned slice of
// `stride` points -- turns every leaf into a ready-made SIMD tile: the
// batched kernels in kernels/batch.h stream `lane(d) + leaf.begin` with
// unit-stride loads regardless of the Dataset's layout policy (which
// switches to row-major above 4 dimensions, where per-point loads would
// otherwise gather). The mirror is immutable after the build and lives
// exactly as long as its tree, so tiles can be consumed from any thread.
#pragma once

#include "data/dataset.h"
#include "kernels/batch.h"
#include "util/aligned.h"
#include "util/common.h"

namespace portal {

class SoaMirror {
 public:
  SoaMirror() = default;

  /// Mirror `data` (the tree's permuted dataset). `parallel` matches the
  /// tree's build flag; the copy is deterministic either way.
  void build(const Dataset& data, bool parallel);

  bool empty() const { return size_ == 0; }
  index_t size() const { return size_; }
  index_t dim() const { return dim_; }

  /// Points per dimension slice; padded up so each slice starts on a cache
  /// line. Padding entries are zero and never addressed by [begin, end)
  /// leaf ranges.
  index_t stride() const { return stride_; }

  /// Base of the dimension-major storage: point j's d-th coordinate lives at
  /// lanes()[d * stride() + j].
  const real_t* lanes() const { return lanes_.data(); }

  /// Dimension slice d (64-byte aligned).
  const real_t* lane(index_t d) const { return lanes_.data() + d * stride_; }

  /// View of a leaf's [begin, begin + count) range as a batch tile.
  batch::Tile tile(index_t begin, index_t count) const {
    return batch::Tile{lanes_.data(), stride_, begin, count, dim_};
  }

 private:
  index_t size_ = 0;
  index_t dim_ = 0;
  index_t stride_ = 0;
  AlignedBuffer<real_t> lanes_;
};

} // namespace portal
