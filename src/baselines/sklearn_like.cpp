#include "baselines/sklearn_like.h"

#include <stdexcept>
#include <vector>

#include "problems/common.h"
#include "traversal/singletree.h"
#include "tree/kdtree.h"

namespace portal {
namespace {

/// Per-query radius-count rules: the per-point query pattern of library
/// KD-tree radius counts, expressed over the single-tree traversal module.
class RadiusCountRules {
 public:
  RadiusCountRules(const KdTree& tree, real_t h_sq, std::vector<real_t>& dists)
      : tree_(tree), h_sq_(h_sq), dists_(dists) {}

  void reset(const real_t* qpt) {
    qpt_ = qpt;
    count_ = 0;
  }
  std::uint64_t count() const { return count_; }

  bool prune_or_take(index_t node_index) {
    const KdNode& node = tree_.node(node_index);
    if (node.box.min_sq_dist_point(qpt_) >= h_sq_) return true; // reject
    if (node.box.max_sq_dist_point(qpt_) < h_sq_) {             // bulk accept
      count_ += static_cast<std::uint64_t>(node.count());
      return true;
    }
    return false;
  }

  void base_case(index_t node_index) {
    const KdNode& node = tree_.node(node_index);
    sq_dists_to_range(tree_.data(), node.begin, node.end, qpt_, dists_.data());
    for (index_t j = 0; j < node.count(); ++j)
      if (dists_[j] < h_sq_) ++count_;
  }

 private:
  const KdTree& tree_;
  real_t h_sq_;
  std::vector<real_t>& dists_;
  const real_t* qpt_ = nullptr;
  std::uint64_t count_ = 0;
};

} // namespace

SklearnTwoPointResult sklearn_like_twopoint(const Dataset& data, real_t h,
                                            index_t leaf_size) {
  if (h <= 0) throw std::invalid_argument("sklearn_like_twopoint: h must be > 0");
  const KdTree tree(data, leaf_size);
  const real_t h_sq = h * h;
  const index_t n = data.size();

  std::vector<real_t> qpt(data.dim());
  std::vector<real_t> dists(tree.stats().max_leaf_count);
  RadiusCountRules rules(tree, h_sq, dists);

  // Ordered pair count including self-pairs, exactly what a per-point radius
  // count returns; converted to unordered distinct pairs at the end.
  std::uint64_t ordered = 0;
  for (index_t i = 0; i < n; ++i) {
    tree.data().copy_point(i, qpt.data());
    rules.reset(qpt.data());
    single_traverse(tree, rules);
    ordered += rules.count();
  }

  SklearnTwoPointResult result;
  result.pairs = (ordered - static_cast<std::uint64_t>(n)) / 2;
  return result;
}

} // namespace portal
