// Portal -- scikit-learn-style baseline for 2-point correlation (Table V).
//
// scikit-learn computes two-point correlation through per-point tree queries
// driven from Python, single-threaded. The stand-in here is the honest
// algorithmic equivalent: a *single-tree* count per query point (subtree
// bulk-accept but no node-pair pruning), strictly one thread. The paper's
// 66-165x gap additionally includes Python interpreter overhead that a C++
// stand-in cannot (and should not) fake, so the reproduced gap is the
// algorithm + parallelism share only; see EXPERIMENTS.md.
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "util/common.h"

namespace portal {

struct SklearnTwoPointResult {
  std::uint64_t pairs = 0; // unordered distinct pairs with d < h
};

/// Single-threaded, single-tree two-point correlation count.
SklearnTwoPointResult sklearn_like_twopoint(const Dataset& data, real_t h,
                                            index_t leaf_size = 40);

} // namespace portal
