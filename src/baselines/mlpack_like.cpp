#include "baselines/mlpack_like.h"

namespace portal {

std::vector<int> mlpack_like_nbc_predict(const NbcModel& model, const Dataset& data) {
  // The bruteforce predictor is exactly the library-grade loop shape:
  // per-point, per-class, per-dimension log-density with no precomputation
  // and no threading.
  return nbc_predict_bruteforce(model, data);
}

} // namespace portal
