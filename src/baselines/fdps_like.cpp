#include "baselines/fdps_like.h"

#include <cmath>

#include "kernels/fastmath.h"
#include "traversal/singletree.h"

namespace portal {
namespace {

inline real_t inv_r3(real_t sq, real_t eps_sq, bool fast) {
  const real_t soft = sq + eps_sq;
  if (fast) {
    const real_t inv = fast_inv_sqrt(soft);
    return inv * inv * inv;
  }
  const real_t inv = real_t(1) / std::sqrt(soft);
  return inv * inv * inv;
}

/// Per-particle Barnes-Hut walk rules (the classic FDPS-style traversal):
/// the MAC acceptance is the single-tree `take`, leaves sum directly.
class MacWalkRules {
 public:
  MacWalkRules(const Octree& tree, real_t eps_sq, real_t theta_sq, bool fast)
      : tree_(tree), eps_sq_(eps_sq), theta_sq_(theta_sq), fast_(fast) {}

  void reset(index_t self, const real_t x[3]) {
    self_ = self;
    for (int d = 0; d < 3; ++d) {
      x_[d] = x[d];
      acc_[d] = 0;
    }
  }
  const real_t* accel() const { return acc_; }

  bool prune_or_take(index_t node_index) {
    const OctreeNode& node = tree_.node(node_index);
    if (node.mass <= 0) return true;

    real_t delta[3];
    real_t sq = 0;
    for (int d = 0; d < 3; ++d) {
      delta[d] = node.com[d] - x_[d];
      sq += delta[d] * delta[d];
    }
    const real_t side = node.side();
    const bool outside = node.box.min_sq_dist_point(x_) > 0;
    if (outside && side * side < theta_sq_ * sq) {
      const real_t scale = node.mass * inv_r3(sq, eps_sq_, fast_);
      for (int d = 0; d < 3; ++d) acc_[d] += scale * delta[d];
      return true; // cell consumed through its center of mass
    }
    return false;
  }

  void base_case(index_t node_index) {
    const OctreeNode& node = tree_.node(node_index);
    const Dataset& pos = tree_.positions();
    for (index_t j = node.begin; j < node.end; ++j) {
      if (j == self_) continue;
      real_t dj[3];
      real_t sq = 0;
      for (int d = 0; d < 3; ++d) {
        dj[d] = pos.coord(j, d) - x_[d];
        sq += dj[d] * dj[d];
      }
      const real_t scale = tree_.masses()[j] * inv_r3(sq, eps_sq_, fast_);
      for (int d = 0; d < 3; ++d) acc_[d] += scale * dj[d];
    }
  }

 private:
  const Octree& tree_;
  real_t eps_sq_;
  real_t theta_sq_;
  bool fast_;
  index_t self_ = -1;
  real_t x_[3] = {0, 0, 0};
  real_t acc_[3] = {0, 0, 0};
};

} // namespace

BarnesHutResult fdps_like_bh(const Dataset& positions,
                             const std::vector<real_t>& masses,
                             const BarnesHutOptions& options) {
  const Octree tree(positions, masses, options.leaf_size);
  const index_t n = positions.size();
  const real_t eps_sq = options.softening * options.softening;
  const real_t theta_sq = options.theta * options.theta;

  BarnesHutResult result;
  result.accel.assign(3 * n, 0);

#pragma omp parallel if (options.parallel)
  {
    MacWalkRules rules(tree, eps_sq, theta_sq, options.fast_rsqrt);
#pragma omp for schedule(static)
    for (index_t i = 0; i < n; ++i) {
      real_t x[3];
      for (int d = 0; d < 3; ++d) x[d] = tree.positions().coord(i, d);
      rules.reset(i, x);
      single_traverse(tree, rules);
      // Un-permute on the fly: permuted body i is original perm()[i].
      for (int d = 0; d < 3; ++d)
        result.accel[3 * tree.perm()[i] + d] = options.G * rules.accel()[d];
    }
  }
  return result;
}

} // namespace portal
