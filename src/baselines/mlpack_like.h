// Portal -- MLPACK-style baseline for the naive Bayes classifier (Table V).
//
// MLPACK's NBC is well-written single-threaded C++ ("offers fast algorithms
// but is not parallel", paper Sec. VI). The stand-in evaluates the full
// per-class log-density per point on one thread without the hoisted-constant
// optimization Portal's generated code applies. The paper's 15-47x gap is
// dominated by 128-way parallelism; on this harness the measurable share is
// the single-core optimization gap times available threads.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "problems/nbc.h"
#include "util/common.h"

namespace portal {

/// Single-threaded, unhoisted NBC prediction.
std::vector<int> mlpack_like_nbc_predict(const NbcModel& model, const Dataset& data);

} // namespace portal
