// Portal -- FDPS-style Barnes-Hut baseline (Table V).
//
// FDPS evaluates forces with a classic *per-particle* tree walk: every body
// independently descends the octree applying the multipole acceptance
// criterion. Portal's generated code instead uses the dual-tree traversal,
// which amortizes one MAC decision over a whole query leaf -- that traversal
// contrast is exactly what the paper credits for its ~70% win over FDPS, and
// it is what this baseline preserves. Parallel over bodies (FDPS is a
// parallel framework).
#pragma once

#include <vector>

#include "data/dataset.h"
#include "problems/barneshut.h"
#include "tree/octree.h"
#include "util/common.h"

namespace portal {

/// Single-tree (per-particle walk) Barnes-Hut with the same force kernel and
/// MAC as bh_expert; accelerations in original body order.
BarnesHutResult fdps_like_bh(const Dataset& positions,
                             const std::vector<real_t>& masses,
                             const BarnesHutOptions& options);

} // namespace portal
