# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_knn_search "/root/repo/build/examples/knn_search")
set_tests_properties(example_knn_search PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_galaxy_sim "/root/repo/build/examples/galaxy_sim" "800" "5")
set_tests_properties(example_galaxy_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_clustering_em "/root/repo/build/examples/clustering_em")
set_tests_properties(example_clustering_em PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_kernel "/root/repo/build/examples/custom_kernel")
set_tests_properties(example_custom_kernel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_shape_matching "/root/repo/build/examples/shape_matching")
set_tests_properties(example_shape_matching PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_knn_classifier "/root/repo/build/examples/knn_classifier")
set_tests_properties(example_knn_classifier PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
