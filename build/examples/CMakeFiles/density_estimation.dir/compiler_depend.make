# Empty compiler generated dependencies file for density_estimation.
# This may be replaced when dependencies are built.
