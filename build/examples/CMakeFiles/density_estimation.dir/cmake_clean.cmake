file(REMOVE_RECURSE
  "CMakeFiles/density_estimation.dir/density_estimation.cpp.o"
  "CMakeFiles/density_estimation.dir/density_estimation.cpp.o.d"
  "density_estimation"
  "density_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/density_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
