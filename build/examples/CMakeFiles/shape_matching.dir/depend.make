# Empty dependencies file for shape_matching.
# This may be replaced when dependencies are built.
