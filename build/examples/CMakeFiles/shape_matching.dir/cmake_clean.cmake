file(REMOVE_RECURSE
  "CMakeFiles/shape_matching.dir/shape_matching.cpp.o"
  "CMakeFiles/shape_matching.dir/shape_matching.cpp.o.d"
  "shape_matching"
  "shape_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shape_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
