file(REMOVE_RECURSE
  "CMakeFiles/knn_classifier.dir/knn_classifier.cpp.o"
  "CMakeFiles/knn_classifier.dir/knn_classifier.cpp.o.d"
  "knn_classifier"
  "knn_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knn_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
