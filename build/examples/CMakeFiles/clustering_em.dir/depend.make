# Empty dependencies file for clustering_em.
# This may be replaced when dependencies are built.
