file(REMOVE_RECURSE
  "CMakeFiles/clustering_em.dir/clustering_em.cpp.o"
  "CMakeFiles/clustering_em.dir/clustering_em.cpp.o.d"
  "clustering_em"
  "clustering_em.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_em.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
