file(REMOVE_RECURSE
  "CMakeFiles/galaxy_sim.dir/galaxy_sim.cpp.o"
  "CMakeFiles/galaxy_sim.dir/galaxy_sim.cpp.o.d"
  "galaxy_sim"
  "galaxy_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galaxy_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
