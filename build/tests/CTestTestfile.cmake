# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_tree[1]_include.cmake")
include("/root/repo/build/tests/test_traversal[1]_include.cmake")
include("/root/repo/build/tests/test_problems_knn[1]_include.cmake")
include("/root/repo/build/tests/test_problems_kde[1]_include.cmake")
include("/root/repo/build/tests/test_problems_misc[1]_include.cmake")
include("/root/repo/build/tests/test_problems_emst[1]_include.cmake")
include("/root/repo/build/tests/test_problems_em[1]_include.cmake")
include("/root/repo/build/tests/test_problems_bh[1]_include.cmake")
include("/root/repo/build/tests/test_core_expr[1]_include.cmake")
include("/root/repo/build/tests/test_core_ir[1]_include.cmake")
include("/root/repo/build/tests/test_core_portal[1]_include.cmake")
include("/root/repo/build/tests/test_core_jit[1]_include.cmake")
include("/root/repo/build/tests/test_core_executor[1]_include.cmake")
include("/root/repo/build/tests/test_core_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_balltree[1]_include.cmake")
include("/root/repo/build/tests/test_core_parser[1]_include.cmake")
include("/root/repo/build/tests/test_codegen_fuzz[1]_include.cmake")
