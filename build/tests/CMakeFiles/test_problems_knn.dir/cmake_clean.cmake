file(REMOVE_RECURSE
  "CMakeFiles/test_problems_knn.dir/test_problems_knn.cpp.o"
  "CMakeFiles/test_problems_knn.dir/test_problems_knn.cpp.o.d"
  "test_problems_knn"
  "test_problems_knn.pdb"
  "test_problems_knn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_problems_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
