# Empty compiler generated dependencies file for test_problems_knn.
# This may be replaced when dependencies are built.
