file(REMOVE_RECURSE
  "CMakeFiles/test_problems_kde.dir/test_problems_kde.cpp.o"
  "CMakeFiles/test_problems_kde.dir/test_problems_kde.cpp.o.d"
  "test_problems_kde"
  "test_problems_kde.pdb"
  "test_problems_kde[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_problems_kde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
