# Empty dependencies file for test_problems_kde.
# This may be replaced when dependencies are built.
