# Empty dependencies file for test_problems_em.
# This may be replaced when dependencies are built.
