file(REMOVE_RECURSE
  "CMakeFiles/test_problems_em.dir/test_problems_em.cpp.o"
  "CMakeFiles/test_problems_em.dir/test_problems_em.cpp.o.d"
  "test_problems_em"
  "test_problems_em.pdb"
  "test_problems_em[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_problems_em.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
