# Empty compiler generated dependencies file for test_core_parser.
# This may be replaced when dependencies are built.
