file(REMOVE_RECURSE
  "CMakeFiles/test_core_jit.dir/test_core_jit.cpp.o"
  "CMakeFiles/test_core_jit.dir/test_core_jit.cpp.o.d"
  "test_core_jit"
  "test_core_jit.pdb"
  "test_core_jit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
