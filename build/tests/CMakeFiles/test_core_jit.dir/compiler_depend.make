# Empty compiler generated dependencies file for test_core_jit.
# This may be replaced when dependencies are built.
