# Empty dependencies file for test_core_portal.
# This may be replaced when dependencies are built.
