file(REMOVE_RECURSE
  "CMakeFiles/test_core_portal.dir/test_core_portal.cpp.o"
  "CMakeFiles/test_core_portal.dir/test_core_portal.cpp.o.d"
  "test_core_portal"
  "test_core_portal.pdb"
  "test_core_portal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_portal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
