# Empty dependencies file for test_problems_emst.
# This may be replaced when dependencies are built.
