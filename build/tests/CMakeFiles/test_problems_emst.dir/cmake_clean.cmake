file(REMOVE_RECURSE
  "CMakeFiles/test_problems_emst.dir/test_problems_emst.cpp.o"
  "CMakeFiles/test_problems_emst.dir/test_problems_emst.cpp.o.d"
  "test_problems_emst"
  "test_problems_emst.pdb"
  "test_problems_emst[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_problems_emst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
