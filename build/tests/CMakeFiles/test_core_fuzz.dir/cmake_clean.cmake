file(REMOVE_RECURSE
  "CMakeFiles/test_core_fuzz.dir/test_core_fuzz.cpp.o"
  "CMakeFiles/test_core_fuzz.dir/test_core_fuzz.cpp.o.d"
  "test_core_fuzz"
  "test_core_fuzz.pdb"
  "test_core_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
