# Empty dependencies file for test_balltree.
# This may be replaced when dependencies are built.
