file(REMOVE_RECURSE
  "CMakeFiles/test_balltree.dir/test_balltree.cpp.o"
  "CMakeFiles/test_balltree.dir/test_balltree.cpp.o.d"
  "test_balltree"
  "test_balltree.pdb"
  "test_balltree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_balltree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
