# Empty dependencies file for test_problems_misc.
# This may be replaced when dependencies are built.
