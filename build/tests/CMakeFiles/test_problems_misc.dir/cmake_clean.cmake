file(REMOVE_RECURSE
  "CMakeFiles/test_problems_misc.dir/test_problems_misc.cpp.o"
  "CMakeFiles/test_problems_misc.dir/test_problems_misc.cpp.o.d"
  "test_problems_misc"
  "test_problems_misc.pdb"
  "test_problems_misc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_problems_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
