file(REMOVE_RECURSE
  "CMakeFiles/test_problems_bh.dir/test_problems_bh.cpp.o"
  "CMakeFiles/test_problems_bh.dir/test_problems_bh.cpp.o.d"
  "test_problems_bh"
  "test_problems_bh.pdb"
  "test_problems_bh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_problems_bh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
