# Empty compiler generated dependencies file for test_problems_bh.
# This may be replaced when dependencies are built.
