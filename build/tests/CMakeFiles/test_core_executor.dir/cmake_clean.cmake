file(REMOVE_RECURSE
  "CMakeFiles/test_core_executor.dir/test_core_executor.cpp.o"
  "CMakeFiles/test_core_executor.dir/test_core_executor.cpp.o.d"
  "test_core_executor"
  "test_core_executor.pdb"
  "test_core_executor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
