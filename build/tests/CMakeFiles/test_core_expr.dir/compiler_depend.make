# Empty compiler generated dependencies file for test_core_expr.
# This may be replaced when dependencies are built.
