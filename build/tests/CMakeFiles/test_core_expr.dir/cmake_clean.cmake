file(REMOVE_RECURSE
  "CMakeFiles/test_core_expr.dir/test_core_expr.cpp.o"
  "CMakeFiles/test_core_expr.dir/test_core_expr.cpp.o.d"
  "test_core_expr"
  "test_core_expr.pdb"
  "test_core_expr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
