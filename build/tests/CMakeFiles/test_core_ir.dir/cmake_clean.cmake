file(REMOVE_RECURSE
  "CMakeFiles/test_core_ir.dir/test_core_ir.cpp.o"
  "CMakeFiles/test_core_ir.dir/test_core_ir.cpp.o.d"
  "test_core_ir"
  "test_core_ir.pdb"
  "test_core_ir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
