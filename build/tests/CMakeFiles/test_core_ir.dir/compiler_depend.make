# Empty compiler generated dependencies file for test_core_ir.
# This may be replaced when dependencies are built.
