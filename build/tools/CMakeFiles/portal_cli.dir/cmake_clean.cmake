file(REMOVE_RECURSE
  "CMakeFiles/portal_cli.dir/portal_cli.cpp.o"
  "CMakeFiles/portal_cli.dir/portal_cli.cpp.o.d"
  "portal_cli"
  "portal_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portal_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
