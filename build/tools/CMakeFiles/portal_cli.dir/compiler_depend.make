# Empty compiler generated dependencies file for portal_cli.
# This may be replaced when dependencies are built.
