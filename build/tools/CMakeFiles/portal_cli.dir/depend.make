# Empty dependencies file for portal_cli.
# This may be replaced when dependencies are built.
