# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_knn "/root/repo/build/tools/portal_cli" "knn" "--demo" "2000" "--k" "3" "--validate")
set_tests_properties(cli_knn PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_kde "/root/repo/build/tools/portal_cli" "kde" "--demo" "2000" "--sigma" "1.0")
set_tests_properties(cli_kde PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rs "/root/repo/build/tools/portal_cli" "rs" "--demo" "1500" "--hi" "1.5")
set_tests_properties(cli_rs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_twopoint "/root/repo/build/tools/portal_cli" "twopoint" "--demo" "1500" "--h" "1.0")
set_tests_properties(cli_twopoint PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_threepoint "/root/repo/build/tools/portal_cli" "threepoint" "--demo" "200" "--h" "1.0")
set_tests_properties(cli_threepoint PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_hausdorff "/root/repo/build/tools/portal_cli" "hausdorff" "--demo" "1000" "--a" "unused")
set_tests_properties(cli_hausdorff PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_emst "/root/repo/build/tools/portal_cli" "emst" "--demo" "1500")
set_tests_properties(cli_emst PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bh "/root/repo/build/tools/portal_cli" "bh" "--demo" "3000" "--theta" "0.5")
set_tests_properties(cli_bh PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/portal_cli" "nonsense")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_script_knn "/root/repo/build/tools/portal_cli" "run" "/root/repo/examples/scripts/knn.portal")
set_tests_properties(cli_script_knn PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_script_twopoint "/root/repo/build/tools/portal_cli" "run" "/root/repo/examples/scripts/twopoint.portal")
set_tests_properties(cli_script_twopoint PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
