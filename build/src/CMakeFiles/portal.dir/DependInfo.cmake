
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/fdps_like.cpp" "src/CMakeFiles/portal.dir/baselines/fdps_like.cpp.o" "gcc" "src/CMakeFiles/portal.dir/baselines/fdps_like.cpp.o.d"
  "/root/repo/src/baselines/mlpack_like.cpp" "src/CMakeFiles/portal.dir/baselines/mlpack_like.cpp.o" "gcc" "src/CMakeFiles/portal.dir/baselines/mlpack_like.cpp.o.d"
  "/root/repo/src/baselines/sklearn_like.cpp" "src/CMakeFiles/portal.dir/baselines/sklearn_like.cpp.o" "gcc" "src/CMakeFiles/portal.dir/baselines/sklearn_like.cpp.o.d"
  "/root/repo/src/core/analysis.cpp" "src/CMakeFiles/portal.dir/core/analysis.cpp.o" "gcc" "src/CMakeFiles/portal.dir/core/analysis.cpp.o.d"
  "/root/repo/src/core/codegen/jit.cpp" "src/CMakeFiles/portal.dir/core/codegen/jit.cpp.o" "gcc" "src/CMakeFiles/portal.dir/core/codegen/jit.cpp.o.d"
  "/root/repo/src/core/codegen/pattern.cpp" "src/CMakeFiles/portal.dir/core/codegen/pattern.cpp.o" "gcc" "src/CMakeFiles/portal.dir/core/codegen/pattern.cpp.o.d"
  "/root/repo/src/core/codegen/vm.cpp" "src/CMakeFiles/portal.dir/core/codegen/vm.cpp.o" "gcc" "src/CMakeFiles/portal.dir/core/codegen/vm.cpp.o.d"
  "/root/repo/src/core/executor.cpp" "src/CMakeFiles/portal.dir/core/executor.cpp.o" "gcc" "src/CMakeFiles/portal.dir/core/executor.cpp.o.d"
  "/root/repo/src/core/func.cpp" "src/CMakeFiles/portal.dir/core/func.cpp.o" "gcc" "src/CMakeFiles/portal.dir/core/func.cpp.o.d"
  "/root/repo/src/core/ir/ir.cpp" "src/CMakeFiles/portal.dir/core/ir/ir.cpp.o" "gcc" "src/CMakeFiles/portal.dir/core/ir/ir.cpp.o.d"
  "/root/repo/src/core/parser.cpp" "src/CMakeFiles/portal.dir/core/parser.cpp.o" "gcc" "src/CMakeFiles/portal.dir/core/parser.cpp.o.d"
  "/root/repo/src/core/passes/lowering.cpp" "src/CMakeFiles/portal.dir/core/passes/lowering.cpp.o" "gcc" "src/CMakeFiles/portal.dir/core/passes/lowering.cpp.o.d"
  "/root/repo/src/core/passes/passes.cpp" "src/CMakeFiles/portal.dir/core/passes/passes.cpp.o" "gcc" "src/CMakeFiles/portal.dir/core/passes/passes.cpp.o.d"
  "/root/repo/src/core/portal_expr.cpp" "src/CMakeFiles/portal.dir/core/portal_expr.cpp.o" "gcc" "src/CMakeFiles/portal.dir/core/portal_expr.cpp.o.d"
  "/root/repo/src/core/storage.cpp" "src/CMakeFiles/portal.dir/core/storage.cpp.o" "gcc" "src/CMakeFiles/portal.dir/core/storage.cpp.o.d"
  "/root/repo/src/core/tuner.cpp" "src/CMakeFiles/portal.dir/core/tuner.cpp.o" "gcc" "src/CMakeFiles/portal.dir/core/tuner.cpp.o.d"
  "/root/repo/src/core/var_expr.cpp" "src/CMakeFiles/portal.dir/core/var_expr.cpp.o" "gcc" "src/CMakeFiles/portal.dir/core/var_expr.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/portal.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/portal.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/generators.cpp" "src/CMakeFiles/portal.dir/data/generators.cpp.o" "gcc" "src/CMakeFiles/portal.dir/data/generators.cpp.o.d"
  "/root/repo/src/data/table2.cpp" "src/CMakeFiles/portal.dir/data/table2.cpp.o" "gcc" "src/CMakeFiles/portal.dir/data/table2.cpp.o.d"
  "/root/repo/src/kernels/linalg.cpp" "src/CMakeFiles/portal.dir/kernels/linalg.cpp.o" "gcc" "src/CMakeFiles/portal.dir/kernels/linalg.cpp.o.d"
  "/root/repo/src/kernels/metrics.cpp" "src/CMakeFiles/portal.dir/kernels/metrics.cpp.o" "gcc" "src/CMakeFiles/portal.dir/kernels/metrics.cpp.o.d"
  "/root/repo/src/problems/barneshut.cpp" "src/CMakeFiles/portal.dir/problems/barneshut.cpp.o" "gcc" "src/CMakeFiles/portal.dir/problems/barneshut.cpp.o.d"
  "/root/repo/src/problems/em.cpp" "src/CMakeFiles/portal.dir/problems/em.cpp.o" "gcc" "src/CMakeFiles/portal.dir/problems/em.cpp.o.d"
  "/root/repo/src/problems/emst.cpp" "src/CMakeFiles/portal.dir/problems/emst.cpp.o" "gcc" "src/CMakeFiles/portal.dir/problems/emst.cpp.o.d"
  "/root/repo/src/problems/hausdorff.cpp" "src/CMakeFiles/portal.dir/problems/hausdorff.cpp.o" "gcc" "src/CMakeFiles/portal.dir/problems/hausdorff.cpp.o.d"
  "/root/repo/src/problems/kde.cpp" "src/CMakeFiles/portal.dir/problems/kde.cpp.o" "gcc" "src/CMakeFiles/portal.dir/problems/kde.cpp.o.d"
  "/root/repo/src/problems/knn.cpp" "src/CMakeFiles/portal.dir/problems/knn.cpp.o" "gcc" "src/CMakeFiles/portal.dir/problems/knn.cpp.o.d"
  "/root/repo/src/problems/nbc.cpp" "src/CMakeFiles/portal.dir/problems/nbc.cpp.o" "gcc" "src/CMakeFiles/portal.dir/problems/nbc.cpp.o.d"
  "/root/repo/src/problems/range_search.cpp" "src/CMakeFiles/portal.dir/problems/range_search.cpp.o" "gcc" "src/CMakeFiles/portal.dir/problems/range_search.cpp.o.d"
  "/root/repo/src/problems/threepoint.cpp" "src/CMakeFiles/portal.dir/problems/threepoint.cpp.o" "gcc" "src/CMakeFiles/portal.dir/problems/threepoint.cpp.o.d"
  "/root/repo/src/problems/twopoint.cpp" "src/CMakeFiles/portal.dir/problems/twopoint.cpp.o" "gcc" "src/CMakeFiles/portal.dir/problems/twopoint.cpp.o.d"
  "/root/repo/src/tree/balltree.cpp" "src/CMakeFiles/portal.dir/tree/balltree.cpp.o" "gcc" "src/CMakeFiles/portal.dir/tree/balltree.cpp.o.d"
  "/root/repo/src/tree/bbox.cpp" "src/CMakeFiles/portal.dir/tree/bbox.cpp.o" "gcc" "src/CMakeFiles/portal.dir/tree/bbox.cpp.o.d"
  "/root/repo/src/tree/kdtree.cpp" "src/CMakeFiles/portal.dir/tree/kdtree.cpp.o" "gcc" "src/CMakeFiles/portal.dir/tree/kdtree.cpp.o.d"
  "/root/repo/src/tree/octree.cpp" "src/CMakeFiles/portal.dir/tree/octree.cpp.o" "gcc" "src/CMakeFiles/portal.dir/tree/octree.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/portal.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/portal.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/threading.cpp" "src/CMakeFiles/portal.dir/util/threading.cpp.o" "gcc" "src/CMakeFiles/portal.dir/util/threading.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
