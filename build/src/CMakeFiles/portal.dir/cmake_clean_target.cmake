file(REMOVE_RECURSE
  "libportal.a"
)
