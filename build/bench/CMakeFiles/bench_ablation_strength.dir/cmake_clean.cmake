file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_strength.dir/bench_ablation_strength.cpp.o"
  "CMakeFiles/bench_ablation_strength.dir/bench_ablation_strength.cpp.o.d"
  "bench_ablation_strength"
  "bench_ablation_strength.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_strength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
