# Empty dependencies file for bench_ablation_strength.
# This may be replaced when dependencies are built.
