# Empty compiler generated dependencies file for bench_fig3_kde_ir.
# This may be replaced when dependencies are built.
