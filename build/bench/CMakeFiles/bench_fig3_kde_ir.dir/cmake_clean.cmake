file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_kde_ir.dir/bench_fig3_kde_ir.cpp.o"
  "CMakeFiles/bench_fig3_kde_ir.dir/bench_fig3_kde_ir.cpp.o.d"
  "bench_fig3_kde_ir"
  "bench_fig3_kde_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_kde_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
