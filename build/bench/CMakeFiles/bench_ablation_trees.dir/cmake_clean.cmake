file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_trees.dir/bench_ablation_trees.cpp.o"
  "CMakeFiles/bench_ablation_trees.dir/bench_ablation_trees.cpp.o.d"
  "bench_ablation_trees"
  "bench_ablation_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
