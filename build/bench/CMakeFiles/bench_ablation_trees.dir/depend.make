# Empty dependencies file for bench_ablation_trees.
# This may be replaced when dependencies are built.
