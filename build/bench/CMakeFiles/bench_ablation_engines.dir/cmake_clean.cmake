file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_engines.dir/bench_ablation_engines.cpp.o"
  "CMakeFiles/bench_ablation_engines.dir/bench_ablation_engines.cpp.o.d"
  "bench_ablation_engines"
  "bench_ablation_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
