# Empty compiler generated dependencies file for bench_fig2_knn_ir.
# This may be replaced when dependencies are built.
