# Empty compiler generated dependencies file for bench_ablation_leaf_size.
# This may be replaced when dependencies are built.
