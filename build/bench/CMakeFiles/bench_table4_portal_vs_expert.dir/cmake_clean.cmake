file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_portal_vs_expert.dir/bench_table4_portal_vs_expert.cpp.o"
  "CMakeFiles/bench_table4_portal_vs_expert.dir/bench_table4_portal_vs_expert.cpp.o.d"
  "bench_table4_portal_vs_expert"
  "bench_table4_portal_vs_expert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_portal_vs_expert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
