# Empty compiler generated dependencies file for bench_table4_portal_vs_expert.
# This may be replaced when dependencies are built.
